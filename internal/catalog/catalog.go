// Package catalog holds the mapping study's dataset: the five research
// directions, the 25 collected tools, the 10 scientific applications, the
// contributing institutions, and the tool-integration selections that the
// application providers made (the paper's Table 2).
//
// The data is embedded as Go literals in data.go so the study is
// self-contained and reproducible offline; JSON import/export is provided so
// the same engine can run over other ecosystems' catalogs.
package catalog

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Direction is one of the five research directions identified by the study
// (Section 2 of the paper).
type Direction string

// The five research directions, in the order the paper lists them.
const (
	InteractiveComputing   Direction = "Interactive computing"
	Orchestration          Direction = "Orchestration"
	EnergyEfficiency       Direction = "Energy efficiency"
	PerformancePortability Direction = "Performance portability"
	BigDataManagement      Direction = "Big Data management"
)

// Directions returns the five research directions in canonical (paper) order.
func Directions() []Direction {
	return []Direction{
		InteractiveComputing,
		Orchestration,
		EnergyEfficiency,
		PerformancePortability,
		BigDataManagement,
	}
}

// Valid reports whether d is one of the five study directions.
func (d Direction) Valid() bool {
	switch d {
	case InteractiveComputing, Orchestration, EnergyEfficiency,
		PerformancePortability, BigDataManagement:
		return true
	}
	return false
}

// Index returns the canonical position of d (0..4), or -1 if invalid.
func (d Direction) Index() int {
	for i, dd := range Directions() {
		if d == dd {
			return i
		}
	}
	return -1
}

// Institution is a research institution contributing tools to the study.
type Institution struct {
	ID   string `json:"id"`   // short code, e.g. "UNITO"
	Name string `json:"name"` // full name
}

// Tool is one collected tool (a row of the paper's Table 1).
type Tool struct {
	Name        string    `json:"name"`
	Direction   Direction `json:"direction"`   // primary research direction (manual label)
	Institution string    `json:"institution"` // contributing institution ID
	Description string    `json:"description"` // one-paragraph summary used by the keyword classifier
	Reference   string    `json:"reference,omitempty"`
	// Year is the tool's reference publication year (0 if unpublished or
	// only available as a repository/service).
	Year int `json:"year,omitempty"`
	// Secondary lists additional directions the tool touches; the paper notes
	// "all tools exhibit a primary direction, even if some cover multiple
	// research topics".
	Secondary []Direction `json:"secondary,omitempty"`
}

// Application is one collected scientific application (Section 3).
type Application struct {
	ID          string `json:"id"`    // paper section number, e.g. "3.1"
	Title       string `json:"title"` // short title
	Domain      string `json:"domain"`
	Description string `json:"description"`
	// SelectedTools are the tools the application provider identified for
	// integration — the checkmarks of the paper's Table 2.
	SelectedTools []string `json:"selected_tools"`
	// Needs are coarse requirement tags used by the survey recommender.
	Needs []string `json:"needs,omitempty"`
}

// Spoke is one ICSC spoke (Fig. 1 context).
type Spoke struct {
	Number int    `json:"number"`
	Name   string `json:"name"`
}

// Flagship is one Spoke 1 scientific flagship (Fig. 1).
type Flagship struct {
	ID          string `json:"id"` // e.g. "FL3"
	Name        string `json:"name"`
	Coordinator string `json:"coordinator"`
}

// Catalog is the complete study dataset.
type Catalog struct {
	Title        string        `json:"title"`
	Institutions []Institution `json:"institutions"`
	Tools        []Tool        `json:"tools"`
	Applications []Application `json:"applications"`
	Spokes       []Spoke       `json:"spokes"`
	Flagships    []Flagship    `json:"flagships"`
}

// Tool returns the tool with the given name (case-sensitive), or an error.
func (c *Catalog) Tool(name string) (*Tool, error) {
	for i := range c.Tools {
		if c.Tools[i].Name == name {
			return &c.Tools[i], nil
		}
	}
	return nil, fmt.Errorf("catalog: unknown tool %q", name)
}

// Application returns the application with the given ID, or an error.
func (c *Catalog) Application(id string) (*Application, error) {
	for i := range c.Applications {
		if c.Applications[i].ID == id {
			return &c.Applications[i], nil
		}
	}
	return nil, fmt.Errorf("catalog: unknown application %q", id)
}

// Institution returns the institution with the given ID, or an error.
func (c *Catalog) Institution(id string) (*Institution, error) {
	for i := range c.Institutions {
		if c.Institutions[i].ID == id {
			return &c.Institutions[i], nil
		}
	}
	return nil, fmt.Errorf("catalog: unknown institution %q", id)
}

// ToolsByDirection returns the tools whose primary direction is d, in catalog
// order (which matches the paper's Table 1 column order).
func (c *Catalog) ToolsByDirection(d Direction) []Tool {
	var out []Tool
	for _, t := range c.Tools {
		if t.Direction == d {
			out = append(out, t)
		}
	}
	return out
}

// ToolsByInstitution returns the tools contributed by institution id.
func (c *Catalog) ToolsByInstitution(id string) []Tool {
	var out []Tool
	for _, t := range c.Tools {
		if t.Institution == id {
			out = append(out, t)
		}
	}
	return out
}

// DirectionsCovered returns the set of primary directions covered by the
// tools of institution id, in canonical order.
func (c *Catalog) DirectionsCovered(id string) []Direction {
	seen := map[Direction]bool{}
	for _, t := range c.ToolsByInstitution(id) {
		seen[t.Direction] = true
	}
	var out []Direction
	for _, d := range Directions() {
		if seen[d] {
			out = append(out, d)
		}
	}
	return out
}

// SelectionsOf returns the application IDs that selected the given tool,
// sorted by application ID.
func (c *Catalog) SelectionsOf(tool string) []string {
	var out []string
	for _, a := range c.Applications {
		for _, t := range a.SelectedTools {
			if t == tool {
				out = append(out, a.ID)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// TotalSelections returns the total number of (application, tool) selection
// pairs — the number of checkmarks in Table 2.
func (c *Catalog) TotalSelections() int {
	n := 0
	for _, a := range c.Applications {
		n += len(a.SelectedTools)
	}
	return n
}

// Validation errors.
var (
	ErrNoTools        = errors.New("catalog: no tools")
	ErrNoApplications = errors.New("catalog: no applications")
)

// Validate checks referential integrity of the catalog: every tool points to
// a known institution and a valid direction, every application selection
// points to a known tool, no duplicate names/IDs.
func (c *Catalog) Validate() error {
	if len(c.Tools) == 0 {
		return ErrNoTools
	}
	if len(c.Applications) == 0 {
		return ErrNoApplications
	}
	instIDs := map[string]bool{}
	for _, in := range c.Institutions {
		if in.ID == "" {
			return errors.New("catalog: institution with empty ID")
		}
		if instIDs[in.ID] {
			return fmt.Errorf("catalog: duplicate institution %q", in.ID)
		}
		instIDs[in.ID] = true
	}
	toolNames := map[string]bool{}
	for _, t := range c.Tools {
		if t.Name == "" {
			return errors.New("catalog: tool with empty name")
		}
		if toolNames[t.Name] {
			return fmt.Errorf("catalog: duplicate tool %q", t.Name)
		}
		toolNames[t.Name] = true
		if !t.Direction.Valid() {
			return fmt.Errorf("catalog: tool %q has invalid direction %q", t.Name, t.Direction)
		}
		if t.Institution != "" && !instIDs[t.Institution] {
			return fmt.Errorf("catalog: tool %q references unknown institution %q", t.Name, t.Institution)
		}
		for _, s := range t.Secondary {
			if !s.Valid() {
				return fmt.Errorf("catalog: tool %q has invalid secondary direction %q", t.Name, s)
			}
			if s == t.Direction {
				return fmt.Errorf("catalog: tool %q lists primary direction %q as secondary", t.Name, s)
			}
		}
	}
	appIDs := map[string]bool{}
	for _, a := range c.Applications {
		if a.ID == "" {
			return errors.New("catalog: application with empty ID")
		}
		if appIDs[a.ID] {
			return fmt.Errorf("catalog: duplicate application %q", a.ID)
		}
		appIDs[a.ID] = true
		sel := map[string]bool{}
		for _, t := range a.SelectedTools {
			if !toolNames[t] {
				return fmt.Errorf("catalog: application %q selects unknown tool %q", a.ID, t)
			}
			if sel[t] {
				return fmt.Errorf("catalog: application %q selects tool %q twice", a.ID, t)
			}
			sel[t] = true
		}
	}
	return nil
}

// WriteJSON serializes the catalog as indented JSON.
func (c *Catalog) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ReadJSON parses a catalog from JSON and validates it.
func ReadJSON(r io.Reader) (*Catalog, error) {
	var c Catalog
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("catalog: decoding JSON: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// String summarizes the catalog on one line.
func (c *Catalog) String() string {
	return fmt.Sprintf("%s: %d tools, %d applications, %d institutions",
		strings.TrimSpace(c.Title), len(c.Tools), len(c.Applications), len(c.Institutions))
}
