package catalog

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func streamOf(t *testing.T, tools []Tool) string {
	t.Helper()
	var b bytes.Buffer
	tw := NewToolWriter(&b)
	for _, tool := range tools {
		if err := tw.Write(tool); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func collect(t *testing.T, stream string) []Tool {
	t.Helper()
	var out []Tool
	if err := StreamTools(strings.NewReader(stream), func(tool Tool) error {
		out = append(out, tool)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// Satellite: export → import → re-export must be byte-identical.
func TestToolStreamRoundTrip(t *testing.T) {
	tools := make([]Tool, 0, 500)
	dirs := Directions()
	for i := 0; i < 500; i++ {
		tools = append(tools, Tool{
			Name:        fmt.Sprintf("tool-%05d", i),
			Direction:   dirs[i%len(dirs)],
			Description: fmt.Sprintf("synthetic description %d with jupyter and energy words", i),
			Year:        2020 + i%4,
		})
	}
	first := streamOf(t, tools)
	back := collect(t, first)
	if len(back) != len(tools) {
		t.Fatalf("imported %d tools, want %d", len(back), len(tools))
	}
	second := streamOf(t, back)
	if first != second {
		t.Fatal("re-exported stream differs from the original bytes")
	}
}

// The embedded catalog's tools survive the stream too (the stream is a
// strict subset view of the full catalog schema).
func TestToolStreamCatalogTools(t *testing.T) {
	tools := Default().Tools
	back := collect(t, streamOf(t, tools))
	if len(back) != len(tools) {
		t.Fatalf("imported %d tools, want %d", len(back), len(tools))
	}
	for i := range tools {
		if back[i].Name != tools[i].Name || back[i].Direction != tools[i].Direction {
			t.Fatalf("tool %d drifted: %+v vs %+v", i, back[i], tools[i])
		}
	}
}

func TestToolStreamEmpty(t *testing.T) {
	stream := streamOf(t, nil)
	if stream != "[]\n" {
		t.Fatalf("empty stream = %q", stream)
	}
	if got := collect(t, stream); len(got) != 0 {
		t.Fatalf("empty stream decoded %d tools", len(got))
	}
}

// Satellite: an invalid direction is rejected with ErrBadDirection, not a
// generic decode error — primary and secondary alike.
func TestToolStreamBadDirection(t *testing.T) {
	bad := `[
{"name":"x","direction":"Quantum vibes","institution":"","description":"d"}
]`
	err := StreamTools(strings.NewReader(bad), func(Tool) error { return nil })
	if !errors.Is(err, ErrBadDirection) {
		t.Fatalf("bad primary direction: got %v, want ErrBadDirection", err)
	}
	badSecondary := `[
{"name":"x","direction":"Orchestration","institution":"","description":"d","secondary":["Nope"]}
]`
	err = StreamTools(strings.NewReader(badSecondary), func(Tool) error { return nil })
	if !errors.Is(err, ErrBadDirection) {
		t.Fatalf("bad secondary direction: got %v, want ErrBadDirection", err)
	}
}

// Satellite: truncation at every interesting cut point is ErrTruncated —
// distinct from the bad-direction rejection.
func TestToolStreamTruncated(t *testing.T) {
	full := streamOf(t, []Tool{
		{Name: "a", Direction: Orchestration, Description: "d"},
		{Name: "b", Direction: EnergyEfficiency, Description: "d"},
	})
	cuts := []int{0, 1, len(full) / 2, len(full) - 2}
	for _, cut := range cuts {
		err := StreamTools(strings.NewReader(full[:cut]), func(Tool) error { return nil })
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: got %v, want ErrTruncated", cut, err)
		}
		if errors.Is(err, ErrBadDirection) {
			t.Fatalf("cut at %d conflates truncation with direction validation", cut)
		}
	}
}

// Malformed-but-complete JSON is neither truncated nor a direction error.
func TestToolStreamMalformed(t *testing.T) {
	for _, in := range []string{`{"not":"an array"}`, `[{"name": 42}]`, `[{"unknown_field": 1}]`} {
		err := StreamTools(strings.NewReader(in), func(Tool) error { return nil })
		if err == nil {
			t.Fatalf("malformed stream %q accepted", in)
		}
		if errors.Is(err, ErrTruncated) || errors.Is(err, ErrBadDirection) {
			t.Fatalf("malformed stream %q misclassified as %v", in, err)
		}
	}
}

// A callback error aborts the stream unchanged.
func TestToolStreamCallbackError(t *testing.T) {
	boom := errors.New("boom")
	stream := streamOf(t, []Tool{{Name: "a", Direction: Orchestration, Description: "d"}})
	if err := StreamTools(strings.NewReader(stream), func(Tool) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("callback error not surfaced: %v", err)
	}
}

// Writes after Close or after a failure must not corrupt the stream.
func TestToolWriterMisuse(t *testing.T) {
	var b bytes.Buffer
	tw := NewToolWriter(&b)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(Tool{Name: "late", Direction: Orchestration}); err == nil {
		t.Fatal("write after Close succeeded")
	}
	if b.String() != "[]\n" {
		t.Fatalf("stream corrupted by late write: %q", b.String())
	}
}
