package catalog

import (
	"bytes"
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default catalog invalid: %v", err)
	}
}

// The paper's headline numbers: 25 tools, 10 applications, 9 institutions.
func TestPaperCardinalities(t *testing.T) {
	c := Default()
	if got := len(c.Tools); got != 25 {
		t.Errorf("tools = %d, want 25", got)
	}
	if got := len(c.Applications); got != 10 {
		t.Errorf("applications = %d, want 10", got)
	}
	if got := len(c.Institutions); got != 9 {
		t.Errorf("institutions = %d, want 9", got)
	}
	if got := len(c.Spokes); got != 11 {
		t.Errorf("spokes = %d, want 11", got)
	}
	if got := len(c.Flagships); got != 5 {
		t.Errorf("flagships = %d, want 5", got)
	}
}

// Figure 2: tool distribution 3/7/3/6/6 over the five directions.
func TestTable1Distribution(t *testing.T) {
	c := Default()
	want := map[Direction]int{
		InteractiveComputing:   3,
		Orchestration:          7,
		EnergyEfficiency:       3,
		PerformancePortability: 6,
		BigDataManagement:      6,
	}
	for d, n := range want {
		if got := len(c.ToolsByDirection(d)); got != n {
			t.Errorf("%s tools = %d, want %d", d, got, n)
		}
	}
}

// Table 2: the exact checkmarks, 28 in total.
func TestTable2Selections(t *testing.T) {
	c := Default()
	want := map[string][]string{
		"3.1":  {"FastFlow", "ParSoDA", "WindFlow"},
		"3.2":  {"ICS", "Jupyter Workflow", "StreamFlow", "Nethuns", "CAPIO"},
		"3.3":  {"StreamFlow"},
		"3.4":  {"INDIGO", "Liqo", "MoveQUIC"},
		"3.5":  {"MoveQUIC", "PESOS"},
		"3.6":  {"Nethuns", "CAPIO"},
		"3.7":  {"Jupyter Workflow", "BDMaaS+", "aMLLibrary", "Mingotti et al."},
		"3.8":  {"INDIGO", "Liqo", "BDMaaS+"},
		"3.9":  {"ICS", "ParSoDA", "aMLLibrary"},
		"3.10": {"StreamFlow", "MLIR"},
	}
	for id, tools := range want {
		app, err := c.Application(id)
		if err != nil {
			t.Fatalf("application %s: %v", id, err)
		}
		if len(app.SelectedTools) != len(tools) {
			t.Errorf("app %s selections = %v, want %v", id, app.SelectedTools, tools)
			continue
		}
		sel := map[string]bool{}
		for _, s := range app.SelectedTools {
			sel[s] = true
		}
		for _, tool := range tools {
			if !sel[tool] {
				t.Errorf("app %s missing selection %q", id, tool)
			}
		}
	}
	if got := c.TotalSelections(); got != 28 {
		t.Errorf("total selections = %d, want 28", got)
	}
}

// Figure 4: votes per direction 4/11/1/6/6.
func TestFig4VotesByDirection(t *testing.T) {
	c := Default()
	votes := map[Direction]int{}
	for _, a := range c.Applications {
		for _, name := range a.SelectedTools {
			tool, err := c.Tool(name)
			if err != nil {
				t.Fatal(err)
			}
			votes[tool.Direction]++
		}
	}
	want := map[Direction]int{
		InteractiveComputing:   4,
		Orchestration:          11,
		EnergyEfficiency:       1,
		PerformancePortability: 6,
		BigDataManagement:      6,
	}
	for d, n := range want {
		if votes[d] != n {
			t.Errorf("%s votes = %d, want %d", d, votes[d], n)
		}
	}
}

// Figure 3: institutions per number of covered directions {1:5, 2:1, 3:2, 4:1}.
func TestFig3InstitutionCoverage(t *testing.T) {
	c := Default()
	hist := map[int]int{}
	for _, in := range c.Institutions {
		n := len(c.DirectionsCovered(in.ID))
		if n == 0 {
			t.Errorf("institution %s contributes no tools", in.ID)
		}
		hist[n]++
	}
	want := map[int]int{1: 5, 2: 1, 3: 2, 4: 1}
	for k, v := range want {
		if hist[k] != v {
			t.Errorf("institutions covering %d directions = %d, want %d", k, hist[k], v)
		}
	}
	if hist[5] != 0 {
		t.Errorf("no institution should cover all five directions, got %d", hist[5])
	}
	// Paper constraint: more than half of institutions cover a single topic.
	if hist[1]*2 <= len(c.Institutions) {
		t.Errorf("paper states >half of institutions cover one topic; got %d of %d", hist[1], len(c.Institutions))
	}
}

func TestLookups(t *testing.T) {
	c := Default()
	if _, err := c.Tool("StreamFlow"); err != nil {
		t.Error(err)
	}
	if _, err := c.Tool("nope"); err == nil {
		t.Error("unknown tool should error")
	}
	if _, err := c.Application("3.5"); err != nil {
		t.Error(err)
	}
	if _, err := c.Application("9.9"); err == nil {
		t.Error("unknown application should error")
	}
	if _, err := c.Institution("UNITO"); err != nil {
		t.Error(err)
	}
	if _, err := c.Institution("MIT"); err == nil {
		t.Error("unknown institution should error")
	}
}

func TestSelectionsOf(t *testing.T) {
	c := Default()
	got := c.SelectionsOf("StreamFlow")
	want := []string{"3.10", "3.2", "3.3"} // sorted lexicographically
	if len(got) != len(want) {
		t.Fatalf("SelectionsOf(StreamFlow) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("SelectionsOf[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if got := c.SelectionsOf("TORCH"); len(got) != 0 {
		t.Errorf("TORCH received no votes in the paper, got %v", got)
	}
}

func TestDirectionHelpers(t *testing.T) {
	if len(Directions()) != 5 {
		t.Fatal("should be five directions")
	}
	if !Orchestration.Valid() || Direction("bogus").Valid() {
		t.Error("Valid misbehaves")
	}
	if InteractiveComputing.Index() != 0 || BigDataManagement.Index() != 4 {
		t.Error("Index misordered")
	}
	if Direction("x").Index() != -1 {
		t.Error("invalid direction should index -1")
	}
}

func TestValidationCatchesCorruption(t *testing.T) {
	fresh := func() *Catalog { return Default() }

	c := fresh()
	c.Tools[0].Direction = "Quantum vibes"
	if err := c.Validate(); err == nil {
		t.Error("invalid direction accepted")
	}

	c = fresh()
	c.Tools = append(c.Tools, c.Tools[0])
	if err := c.Validate(); err == nil {
		t.Error("duplicate tool accepted")
	}

	c = fresh()
	c.Applications[0].SelectedTools = append(c.Applications[0].SelectedTools, "GhostTool")
	if err := c.Validate(); err == nil {
		t.Error("selection of unknown tool accepted")
	}

	c = fresh()
	c.Applications[0].SelectedTools = append(c.Applications[0].SelectedTools, c.Applications[0].SelectedTools[0])
	if err := c.Validate(); err == nil {
		t.Error("duplicate selection accepted")
	}

	c = fresh()
	c.Tools[0].Institution = "HOGWARTS"
	if err := c.Validate(); err == nil {
		t.Error("unknown institution accepted")
	}

	c = fresh()
	c.Tools[2].Secondary = []Direction{c.Tools[2].Direction}
	if err := c.Validate(); err == nil {
		t.Error("secondary equal to primary accepted")
	}

	c = fresh()
	c.Tools = nil
	if err := c.Validate(); err != ErrNoTools {
		t.Errorf("empty tools err = %v", err)
	}

	c = fresh()
	c.Applications = nil
	if err := c.Validate(); err != ErrNoApplications {
		t.Errorf("empty applications err = %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := Default()
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Tools) != len(c.Tools) || len(c2.Applications) != len(c.Applications) {
		t.Error("round trip lost records")
	}
	if c2.Tools[3].Name != c.Tools[3].Name || c2.Tools[3].Direction != c.Tools[3].Direction {
		t.Error("round trip corrupted tool")
	}
	if c2.TotalSelections() != 28 {
		t.Errorf("round trip selections = %d", c2.TotalSelections())
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Error("syntactically invalid JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"title":"x","unknown_field":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	// Valid JSON but semantically empty catalog must fail validation.
	if _, err := ReadJSON(strings.NewReader(`{"title":"x"}`)); err == nil {
		t.Error("empty catalog accepted")
	}
}

func TestStringSummary(t *testing.T) {
	s := Default().String()
	if !strings.Contains(s, "25 tools") || !strings.Contains(s, "10 applications") {
		t.Errorf("summary = %q", s)
	}
}

func TestDefaultIsFreshCopy(t *testing.T) {
	a := Default()
	a.Tools[0].Name = "mutated"
	b := Default()
	if b.Tools[0].Name == "mutated" {
		t.Error("Default() shares state between calls")
	}
}
