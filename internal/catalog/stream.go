package catalog

// Streamed tool JSON: the import/export seam for generated corpora.
//
// Catalog.WriteJSON/ReadJSON materialize the whole catalog — fine for the
// study's 25 tools, wrong for the 10^4–10^7-entry synthetic corpora of the
// sharded classification engine (internal/corpus). The stream form reads
// and writes one Tool at a time in constant memory: a JSON array with one
// compact object per line, deterministic byte-for-byte (struct field order
// is fixed and the encoder adds nothing), so export → import → re-export
// reproduces the input exactly.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Stream-validation errors. They are distinct sentinels: a reader must be
// able to tell data that ended too early (retry/refetch) from data that is
// well-formed JSON but not a valid tool (reject).
var (
	// ErrTruncated marks a stream that ended before the closing bracket —
	// a partial download or an interrupted export.
	ErrTruncated = errors.New("catalog: truncated tool stream")
	// ErrBadDirection marks a tool whose direction (primary or secondary)
	// is not one of the five study directions.
	ErrBadDirection = errors.New("catalog: invalid direction")
)

// StreamTools reads a JSON array of tools from r, calling fn for each one
// as it is decoded — the whole array is never held in memory. Every tool's
// directions are validated on the way through: a bad direction fails with
// ErrBadDirection, input that ends mid-stream fails with ErrTruncated, and
// an error from fn aborts the scan unchanged.
func StreamTools(r io.Reader, fn func(Tool) error) error {
	dec := json.NewDecoder(bufio.NewReader(r))
	dec.DisallowUnknownFields()
	tok, err := dec.Token()
	if err != nil {
		return streamErr(err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return fmt.Errorf("catalog: tool stream must be a JSON array, got %v", tok)
	}
	for i := 0; dec.More(); i++ {
		var t Tool
		if err := dec.Decode(&t); err != nil {
			return streamErr(err)
		}
		if !t.Direction.Valid() {
			return fmt.Errorf("%w: tool %d (%q) has direction %q", ErrBadDirection, i, t.Name, t.Direction)
		}
		for _, s := range t.Secondary {
			if !s.Valid() {
				return fmt.Errorf("%w: tool %d (%q) has secondary direction %q", ErrBadDirection, i, t.Name, s)
			}
		}
		if err := fn(t); err != nil {
			return err
		}
	}
	if _, err := dec.Token(); err != nil { // the closing ']'
		return streamErr(err)
	}
	return nil
}

// streamErr folds the decoder's end-of-input errors into ErrTruncated and
// passes real syntax errors through.
func streamErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return fmt.Errorf("catalog: decoding tool stream: %w", err)
}

// ToolWriter emits the streamed tool format incrementally: `[`, one
// compact JSON object per line, `]`. Writes after an error are no-ops
// reporting the first error, so a failed export cannot silently truncate
// into a valid-looking stream.
type ToolWriter struct {
	w   *bufio.Writer
	n   int
	err error
	// closed guards against writes after Close.
	closed bool
}

// NewToolWriter starts a tool stream on w.
func NewToolWriter(w io.Writer) *ToolWriter {
	return &ToolWriter{w: bufio.NewWriter(w)}
}

// Write appends one tool to the stream.
func (tw *ToolWriter) Write(t Tool) error {
	if tw.err != nil {
		return tw.err
	}
	if tw.closed {
		tw.err = errors.New("catalog: write to closed tool stream")
		return tw.err
	}
	data, err := json.Marshal(t)
	if err != nil {
		tw.err = err
		return err
	}
	if tw.n == 0 {
		_, tw.err = tw.w.WriteString("[\n")
	} else {
		_, tw.err = tw.w.WriteString(",\n")
	}
	if tw.err == nil {
		_, tw.err = tw.w.Write(data)
	}
	tw.n++
	return tw.err
}

// Close terminates the array and flushes. An empty stream closes to "[]".
func (tw *ToolWriter) Close() error {
	if tw.err != nil {
		return tw.err
	}
	tw.closed = true
	if tw.n == 0 {
		_, tw.err = tw.w.WriteString("[]\n")
	} else {
		_, tw.err = tw.w.WriteString("\n]\n")
	}
	if tw.err == nil {
		tw.err = tw.w.Flush()
	}
	return tw.err
}
