package pmu

import "testing"

// BenchmarkEstimatePhasor measures one-cycle DFT estimation.
func BenchmarkEstimatePhasor(b *testing.B) {
	sig := &Signal{Amplitude: 325, Frequency: 50, Phase: 0.3}
	e := &Estimator{SampleRate: 10000, NominalHz: 50}
	win := e.WindowSamples()
	samples := make([]float64, win)
	for i := range samples {
		samples[i] = sig.Sample(float64(i)/e.SampleRate, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.EstimatePhasor(samples, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHIL measures a 50-frame closed loop.
func BenchmarkHIL(b *testing.B) {
	e := &Estimator{SampleRate: 10000, NominalHz: 50}
	ctrl := DroopController{NominalHz: 50, Gain: 0.4}
	for i := 0; i < b.N; i++ {
		sig := &Signal{Amplitude: 325, Frequency: 50.5, Phase: 0}
		if _, _, err := e.RunHIL(sig, 50, ctrl, nil); err != nil {
			b.Fatal(err)
		}
	}
}
