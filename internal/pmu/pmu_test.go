package pmu

import (
	"math"
	"repro/internal/rng"
	"testing"
)

func cleanSignal() *Signal {
	return &Signal{Amplitude: 230 * math.Sqrt2, Frequency: 50, Phase: 0.3}
}

func nominalEstimator() *Estimator {
	return &Estimator{SampleRate: 10000, NominalHz: 50}
}

func TestSignalValidate(t *testing.T) {
	bad := []*Signal{
		{Amplitude: 0, Frequency: 50},
		{Amplitude: 1, Frequency: 0},
		{Amplitude: 1, Frequency: 50, NoiseStd: -1},
		{Amplitude: 1, Frequency: 50, Harmonics: map[int]float64{1: 0.1}},
		{Amplitude: 1, Frequency: 50, Harmonics: map[int]float64{3: -0.1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad signal %d accepted", i)
		}
	}
	if err := cleanSignal().Validate(); err != nil {
		t.Error(err)
	}
}

func TestEstimatorValidate(t *testing.T) {
	if err := (&Estimator{SampleRate: 100, NominalHz: 50}).Validate(); err == nil {
		t.Error("undersampled estimator accepted")
	}
	if err := nominalEstimator().Validate(); err != nil {
		t.Error(err)
	}
	if got := nominalEstimator().WindowSamples(); got != 200 {
		t.Errorf("window = %d", got)
	}
}

// A clean on-nominal signal must be estimated with TVE ≪ 1% (the IEEE
// C37.118 compliance bound).
func TestPhasorEstimationCleanSignal(t *testing.T) {
	sig := cleanSignal()
	e := nominalEstimator()
	win := e.WindowSamples()
	samples := make([]float64, win)
	for i := range samples {
		samples[i] = sig.Sample(float64(i)/e.SampleRate, nil)
	}
	ph, err := e.EstimatePhasor(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth := Phasor{Magnitude: sig.Amplitude, PhaseRad: sig.Phase}
	if tve := ph.TVE(truth); tve > 0.001 {
		t.Errorf("TVE = %.5f, want < 0.1%%", tve)
	}
}

func TestPhasorEstimationWithHarmonicsAndNoise(t *testing.T) {
	sig := cleanSignal()
	sig.Harmonics = map[int]float64{3: 0.05, 5: 0.03}
	sig.NoiseStd = 1.0
	e := nominalEstimator()
	win := e.WindowSamples()
	rng := rng.New(2)
	samples := make([]float64, win)
	for i := range samples {
		samples[i] = sig.Sample(float64(i)/e.SampleRate, rng)
	}
	ph, err := e.EstimatePhasor(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth := Phasor{Magnitude: sig.Amplitude, PhaseRad: sig.Phase}
	// Harmonics are off-bin over a full fundamental cycle: DFT rejects
	// them well; 1% TVE budget.
	if tve := ph.TVE(truth); tve > 0.01 {
		t.Errorf("TVE = %.5f, want < 1%%", tve)
	}
}

func TestRunEstimatesOffNominalFrequency(t *testing.T) {
	sig := cleanSignal()
	sig.Frequency = 50.2 // off-nominal by +0.2 Hz
	e := nominalEstimator()
	ms, err := e.Run(sig, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 20 {
		t.Fatalf("frames = %d", len(ms))
	}
	// After the first frame, the phase-difference frequency estimator must
	// track 50.2 Hz closely.
	for _, m := range ms[2:] {
		if math.Abs(m.FreqHz-50.2) > 0.01 {
			t.Errorf("t=%.3f freq = %.4f, want 50.2", m.Time, m.FreqHz)
		}
	}
	// Steady frequency → near-zero ROCOF.
	for _, m := range ms[3:] {
		if math.Abs(m.ROCOFHzS) > 0.5 {
			t.Errorf("t=%.3f ROCOF = %.4f, want ≈ 0", m.Time, m.ROCOFHzS)
		}
	}
}

func TestRunErrors(t *testing.T) {
	e := nominalEstimator()
	if _, err := e.Run(cleanSignal(), 0, nil); err == nil {
		t.Error("zero frames accepted")
	}
	if _, err := e.Run(&Signal{}, 5, nil); err == nil {
		t.Error("invalid signal accepted")
	}
	bad := &Estimator{SampleRate: 10, NominalHz: 50}
	if _, err := bad.Run(cleanSignal(), 5, nil); err == nil {
		t.Error("invalid estimator accepted")
	}
	if _, err := e.EstimatePhasor([]float64{1, 2}, 0); err == nil {
		t.Error("too-short window accepted")
	}
}

// The HIL loop: a droop controller must pull a drifted grid back toward
// nominal frequency.
func TestHILClosedLoopRestoresFrequency(t *testing.T) {
	sig := cleanSignal()
	sig.Frequency = 50.5 // disturbed grid
	e := nominalEstimator()
	ctrl := DroopController{NominalHz: 50, Gain: 0.4}
	ms, finalFreq, err := e.RunHIL(sig, 60, ctrl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 60 {
		t.Fatalf("frames = %d", len(ms))
	}
	if math.Abs(finalFreq-50) > 0.02 {
		t.Errorf("final frequency = %.4f, want ≈ 50 (restored)", finalFreq)
	}
	// Open loop for contrast: frequency stays disturbed.
	sig2 := cleanSignal()
	sig2.Frequency = 50.5
	if _, err := e.Run(sig2, 60, nil); err != nil {
		t.Fatal(err)
	}
	if sig2.Frequency != 50.5 {
		t.Error("open loop should not modify the signal")
	}
}

func TestHILErrors(t *testing.T) {
	e := nominalEstimator()
	if _, _, err := e.RunHIL(cleanSignal(), 10, nil, nil); err == nil {
		t.Error("nil controller accepted")
	}
	if _, _, err := e.RunHIL(cleanSignal(), 0, DroopController{NominalHz: 50, Gain: 0.1}, nil); err == nil {
		t.Error("zero frames accepted")
	}
}

func TestTVEProperties(t *testing.T) {
	truth := Phasor{Magnitude: 100, PhaseRad: 1}
	if tve := truth.TVE(truth); tve != 0 {
		t.Errorf("self TVE = %v", tve)
	}
	// 1% magnitude error → 1% TVE.
	est := Phasor{Magnitude: 101, PhaseRad: 1}
	if tve := est.TVE(truth); math.Abs(tve-0.01) > 1e-12 {
		t.Errorf("magnitude-only TVE = %v", tve)
	}
	// Small phase error φ → TVE ≈ φ.
	est = Phasor{Magnitude: 100, PhaseRad: 1.001}
	if tve := est.TVE(truth); math.Abs(tve-0.001) > 1e-5 {
		t.Errorf("phase-only TVE = %v", tve)
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi + 0.1, -math.Pi + 0.1},
		{-math.Pi - 0.1, math.Pi - 0.1},
		{5 * math.Pi, math.Pi},
	}
	for _, c := range cases {
		if got := normalizeAngle(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("normalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
