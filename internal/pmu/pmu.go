// Package pmu implements a real-time simulator of a Phasor Measurement
// Unit in the style of Mingotti et al. (Sensors 2021; Section 2.5 of the
// paper): a virtual PMU samples a power-grid voltage waveform, estimates
// its synchrophasor (amplitude and phase), frequency, and ROCOF over
// sliding windows, and can run in a hardware-in-the-loop (HIL) closed loop
// where a controller steers the simulated signal — the digital-twin use the
// paper highlights for application 3.7.
//
// Accuracy is reported as Total Vector Error (TVE), the IEEE C37.118
// metric: |estimated phasor − true phasor| / |true phasor|.
package pmu

import (
	"errors"
	"fmt"
	"math"
	prng "repro/internal/rng"
)

// Signal describes the simulated grid waveform:
//
//	v(t) = Amplitude·cos(2π·Frequency·t + Phase) + harmonics + noise
type Signal struct {
	Amplitude float64 // volts (peak)
	Frequency float64 // Hz (nominal 50 or 60)
	Phase     float64 // radians
	// Harmonics maps harmonic order (≥2) to relative amplitude (fraction
	// of the fundamental).
	Harmonics map[int]float64
	// NoiseStd is the standard deviation of additive Gaussian noise.
	NoiseStd float64
}

// Validate checks the signal.
func (s *Signal) Validate() error {
	if s.Amplitude <= 0 {
		return fmt.Errorf("pmu: non-positive amplitude %v", s.Amplitude)
	}
	if s.Frequency <= 0 {
		return fmt.Errorf("pmu: non-positive frequency %v", s.Frequency)
	}
	if s.NoiseStd < 0 {
		return fmt.Errorf("pmu: negative noise std %v", s.NoiseStd)
	}
	for k, a := range s.Harmonics {
		if k < 2 {
			return fmt.Errorf("pmu: harmonic order %d < 2", k)
		}
		if a < 0 {
			return fmt.Errorf("pmu: negative harmonic amplitude %v", a)
		}
	}
	return nil
}

// Sample returns v(t) with deterministic noise drawn from rng (nil = no
// noise regardless of NoiseStd).
func (s *Signal) Sample(t float64, rng *prng.Rand) float64 {
	v := s.Amplitude * math.Cos(2*math.Pi*s.Frequency*t+s.Phase)
	for k, rel := range s.Harmonics {
		v += s.Amplitude * rel * math.Cos(2*math.Pi*s.Frequency*float64(k)*t)
	}
	if rng != nil && s.NoiseStd > 0 {
		v += rng.NormFloat64() * s.NoiseStd
	}
	return v
}

// Phasor is a synchrophasor estimate.
type Phasor struct {
	Magnitude float64 // RMS-scaled magnitude (peak/√2 convention not used: peak magnitude)
	PhaseRad  float64
}

// TVE returns the total vector error of the estimate against the true
// phasor, per IEEE C37.118.
func (p Phasor) TVE(truth Phasor) float64 {
	ex := p.Magnitude*math.Cos(p.PhaseRad) - truth.Magnitude*math.Cos(truth.PhaseRad)
	ey := p.Magnitude*math.Sin(p.PhaseRad) - truth.Magnitude*math.Sin(truth.PhaseRad)
	return math.Hypot(ex, ey) / truth.Magnitude
}

// Estimator is a DFT-based synchrophasor estimator.
type Estimator struct {
	// SampleRate in samples/second.
	SampleRate float64
	// NominalHz is the assumed grid frequency (window length = one cycle).
	NominalHz float64
}

// Validate checks the estimator configuration (needs several samples per
// cycle).
func (e *Estimator) Validate() error {
	if e.SampleRate <= 0 || e.NominalHz <= 0 {
		return errors.New("pmu: non-positive estimator parameters")
	}
	if e.SampleRate < 4*e.NominalHz {
		return fmt.Errorf("pmu: sample rate %v too low for %v Hz", e.SampleRate, e.NominalHz)
	}
	return nil
}

// WindowSamples returns the samples per one nominal cycle.
func (e *Estimator) WindowSamples() int {
	return int(math.Round(e.SampleRate / e.NominalHz))
}

// EstimatePhasor computes the fundamental phasor of one window of samples
// starting at time t0, via single-bin DFT at the nominal frequency.
func (e *Estimator) EstimatePhasor(samples []float64, t0 float64) (Phasor, error) {
	if err := e.Validate(); err != nil {
		return Phasor{}, err
	}
	n := len(samples)
	if n < 4 {
		return Phasor{}, fmt.Errorf("pmu: window of %d samples too short", n)
	}
	var re, im float64
	for i, v := range samples {
		t := t0 + float64(i)/e.SampleRate
		ang := 2 * math.Pi * e.NominalHz * t
		re += v * math.Cos(ang)
		im -= v * math.Sin(ang)
	}
	re *= 2 / float64(n)
	im *= 2 / float64(n)
	return Phasor{Magnitude: math.Hypot(re, im), PhaseRad: math.Atan2(im, re)}, nil
}

// Measurement is one reported PMU frame.
type Measurement struct {
	Time     float64
	Phasor   Phasor
	FreqHz   float64
	ROCOFHzS float64 // rate of change of frequency
}

// Run samples the signal for `frames` consecutive one-cycle windows and
// reports a measurement per window. Frequency is derived from consecutive
// phase estimates; ROCOF from consecutive frequencies.
func (e *Estimator) Run(sig *Signal, frames int, rng *prng.Rand) ([]Measurement, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	if err := sig.Validate(); err != nil {
		return nil, err
	}
	if frames <= 0 {
		return nil, fmt.Errorf("pmu: non-positive frame count %d", frames)
	}
	win := e.WindowSamples()
	frameDur := float64(win) / e.SampleRate
	out := make([]Measurement, 0, frames)
	prevPhase := math.NaN()
	prevFreq := math.NaN()
	for f := 0; f < frames; f++ {
		t0 := float64(f) * frameDur
		samples := make([]float64, win)
		for i := range samples {
			samples[i] = sig.Sample(t0+float64(i)/e.SampleRate, rng)
		}
		ph, err := e.EstimatePhasor(samples, t0)
		if err != nil {
			return nil, err
		}
		m := Measurement{Time: t0, Phasor: ph, FreqHz: e.NominalHz}
		if !math.IsNaN(prevPhase) {
			dphi := normalizeAngle(ph.PhaseRad - prevPhase)
			m.FreqHz = e.NominalHz + dphi/(2*math.Pi*frameDur)
			if !math.IsNaN(prevFreq) {
				m.ROCOFHzS = (m.FreqHz - prevFreq) / frameDur
			}
			prevFreq = m.FreqHz
		}
		prevPhase = ph.PhaseRad
		out = append(out, m)
	}
	return out, nil
}

func normalizeAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a < -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// --- Hardware-in-the-loop closed loop ---------------------------------------

// Controller reacts to a measurement by returning a frequency adjustment
// for the signal source (the "hardware" side of HIL).
type Controller interface {
	Adjust(m Measurement) (deltaHz float64)
}

// DroopController is a proportional frequency-restoration controller: it
// pushes the signal back toward the nominal frequency.
type DroopController struct {
	NominalHz float64
	Gain      float64 // fraction of the error corrected per frame
}

// Adjust implements Controller.
func (c DroopController) Adjust(m Measurement) float64 {
	return -c.Gain * (m.FreqHz - c.NominalHz)
}

// RunHIL runs the closed loop: each frame is measured, the controller's
// adjustment is applied to the signal before the next frame — the
// hardware-in-the-loop pattern of the paper. It returns the measurement
// trace and the final signal frequency.
func (e *Estimator) RunHIL(sig *Signal, frames int, ctrl Controller, rng *prng.Rand) ([]Measurement, float64, error) {
	if ctrl == nil {
		return nil, 0, errors.New("pmu: nil controller")
	}
	if err := e.Validate(); err != nil {
		return nil, 0, err
	}
	if err := sig.Validate(); err != nil {
		return nil, 0, err
	}
	if frames <= 0 {
		return nil, 0, fmt.Errorf("pmu: non-positive frame count %d", frames)
	}
	win := e.WindowSamples()
	frameDur := float64(win) / e.SampleRate
	var out []Measurement
	prevPhase := math.NaN()
	for f := 0; f < frames; f++ {
		t0 := float64(f) * frameDur
		samples := make([]float64, win)
		for i := range samples {
			samples[i] = sig.Sample(t0+float64(i)/e.SampleRate, rng)
		}
		ph, err := e.EstimatePhasor(samples, t0)
		if err != nil {
			return nil, 0, err
		}
		m := Measurement{Time: t0, Phasor: ph, FreqHz: e.NominalHz}
		if !math.IsNaN(prevPhase) {
			dphi := normalizeAngle(ph.PhaseRad - prevPhase)
			m.FreqHz = e.NominalHz + dphi/(2*math.Pi*frameDur)
		}
		prevPhase = ph.PhaseRad
		out = append(out, m)
		if f > 0 { // first frame has no frequency estimate
			delta := ctrl.Adjust(m)
			// Keep the instantaneous phase 2πft+φ continuous across the
			// frequency change (a real oscillator accumulates phase; this
			// simulator recomputes it from t, so φ must absorb the jump).
			tAdj := t0 + frameDur
			sig.Phase = normalizeAngle(sig.Phase - 2*math.Pi*delta*tAdj)
			sig.Frequency += delta
		}
	}
	return out, sig.Frequency, nil
}
