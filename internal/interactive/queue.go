package interactive

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/continuum"
)

// This file implements an ICS/SLURM-style cluster queue: batch jobs run
// FCFS with EASY backfilling over a fixed core pool, and advance
// reservations carve capacity out of the pool so interactive sessions get
// near-instantaneous access (Section 2.1: ICS "interactively provides
// near-instantaneous access to HPC resources" on top of the SLURM
// controller; BookedSlurm creates the reservations).

// Job is a batch submission.
type Job struct {
	ID       string
	Cores    int
	Duration float64 // walltime, seconds
	SubmitAt float64
	// ReservationID binds the job to a reservation (interactive session);
	// it then runs inside the reserved capacity at the reservation start.
	ReservationID string
}

// Reservation carves cores out of the pool for [Start, End).
type Reservation struct {
	ID    string
	Cores int
	Start float64
	End   float64
}

// JobTrace records a completed job.
type JobTrace struct {
	Job    Job
	StartS float64
	EndS   float64
	WaitS  float64
}

// usagePoint is a step-function delta at a time.
type usagePoint struct {
	at    float64
	delta int
}

// timeline tracks committed core usage over time as a step function.
type timeline struct {
	points []usagePoint
	cap    int
}

func newTimeline(capacity int) *timeline { return &timeline{cap: capacity} }

// add commits delta cores over [from, to).
func (t *timeline) add(from, to float64, cores int) {
	t.points = append(t.points, usagePoint{from, cores}, usagePoint{to, -cores})
	sort.Slice(t.points, func(i, j int) bool { return t.points[i].at < t.points[j].at })
}

// maxUsage returns the peak committed usage over [from, to). Intervals are
// half-open, so a commitment ending exactly at `from` (its -delta fires at
// `from`) does not count, and one starting exactly at `from` does.
func (t *timeline) maxUsage(from, to float64) int {
	usage := 0
	for _, p := range t.points {
		if p.at > from {
			break
		}
		usage += p.delta // everything effective at or before `from`
	}
	peak := usage
	for _, p := range t.points {
		if p.at <= from {
			continue
		}
		if p.at >= to {
			break
		}
		usage += p.delta
		if usage > peak {
			peak = usage
		}
	}
	return peak
}

// fits reports whether cores can be committed over [from, to).
func (t *timeline) fits(from, to float64, cores int) bool {
	return t.maxUsage(from, to)+cores <= t.cap
}

// changeTimes returns the sorted distinct times ≥ from where usage changes.
func (t *timeline) changeTimes(from float64) []float64 {
	var out []float64
	last := math.Inf(-1)
	for _, p := range t.points {
		if p.at >= from && p.at != last {
			out = append(out, p.at)
			last = p.at
		}
	}
	return out
}

// Cluster is the queued core pool.
type Cluster struct {
	Cores int

	timeline     *timeline
	reservations map[string]*Reservation
	jobs         []Job
	// EnableBackfill turns EASY backfilling on (default in NewCluster).
	EnableBackfill bool
}

// NewCluster returns a cluster with the given core count.
func NewCluster(cores int) (*Cluster, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("interactive: non-positive core count %d", cores)
	}
	return &Cluster{
		Cores:          cores,
		timeline:       newTimeline(cores),
		reservations:   map[string]*Reservation{},
		EnableBackfill: true,
	}, nil
}

// Reserve registers an advance reservation, failing if the carve-out would
// exceed capacity given existing commitments.
func (c *Cluster) Reserve(r Reservation) error {
	if r.ID == "" {
		return errors.New("interactive: reservation with empty ID")
	}
	if _, dup := c.reservations[r.ID]; dup {
		return fmt.Errorf("interactive: duplicate reservation %q", r.ID)
	}
	if r.Cores <= 0 || r.Cores > c.Cores {
		return fmt.Errorf("interactive: reservation %q cores %d outside (0,%d]", r.ID, r.Cores, c.Cores)
	}
	if r.End <= r.Start || r.Start < 0 {
		return fmt.Errorf("interactive: reservation %q has invalid window [%v,%v)", r.ID, r.Start, r.End)
	}
	if !c.timeline.fits(r.Start, r.End, r.Cores) {
		return fmt.Errorf("interactive: reservation %q does not fit", r.ID)
	}
	cp := r
	c.reservations[r.ID] = &cp
	c.timeline.add(r.Start, r.End, r.Cores)
	return nil
}

// Submit queues a job for the simulation run.
func (c *Cluster) Submit(j Job) error {
	if j.ID == "" {
		return errors.New("interactive: job with empty ID")
	}
	for _, q := range c.jobs {
		if q.ID == j.ID {
			return fmt.Errorf("interactive: duplicate job %q", j.ID)
		}
	}
	if j.Cores <= 0 || j.Duration <= 0 || j.SubmitAt < 0 {
		return fmt.Errorf("interactive: job %q has invalid parameters", j.ID)
	}
	if j.ReservationID != "" {
		r, ok := c.reservations[j.ReservationID]
		if !ok {
			return fmt.Errorf("interactive: job %q references unknown reservation %q", j.ID, j.ReservationID)
		}
		if j.Cores > r.Cores {
			return fmt.Errorf("interactive: job %q needs %d cores, reservation has %d", j.ID, j.Cores, r.Cores)
		}
		if j.SubmitAt > r.Start {
			return fmt.Errorf("interactive: job %q submitted after its reservation start", j.ID)
		}
		if j.Duration > r.End-r.Start {
			return fmt.Errorf("interactive: job %q longer than its reservation", j.ID)
		}
	} else if j.Cores > c.Cores {
		return fmt.Errorf("interactive: job %q needs %d cores, cluster has %d", j.ID, j.Cores, c.Cores)
	}
	c.jobs = append(c.jobs, j)
	return nil
}

// Run schedules all submitted jobs to completion and returns their traces
// sorted by start time (ties by ID). The scheduling policy is FCFS by
// submit time with EASY backfilling; reservation-bound jobs start exactly
// at their reservation start inside the carved capacity.
func (c *Cluster) Run() ([]JobTrace, error) {
	var traces []JobTrace

	// Reservation-bound jobs: start at reservation start, using capacity
	// already committed by Reserve (no extra timeline charge).
	var batch []Job
	for _, j := range c.jobs {
		if j.ReservationID != "" {
			r := c.reservations[j.ReservationID]
			traces = append(traces, JobTrace{
				Job:    j,
				StartS: r.Start,
				EndS:   r.Start + j.Duration,
				WaitS:  math.Max(0, r.Start-j.SubmitAt),
			})
			continue
		}
		batch = append(batch, j)
	}

	// FCFS order by submit time (stable on ID for determinism).
	sort.SliceStable(batch, func(i, j int) bool {
		if batch[i].SubmitAt != batch[j].SubmitAt {
			return batch[i].SubmitAt < batch[j].SubmitAt
		}
		return batch[i].ID < batch[j].ID
	})

	earliestStart := func(j Job, notBefore float64) float64 {
		t0 := math.Max(j.SubmitAt, notBefore)
		if c.timeline.fits(t0, t0+j.Duration, j.Cores) {
			return t0
		}
		for _, tc := range c.timeline.changeTimes(t0) {
			if c.timeline.fits(tc, tc+j.Duration, j.Cores) {
				return tc
			}
		}
		// After the last change everything committed has ended.
		last := t0
		if n := len(c.timeline.points); n > 0 {
			last = math.Max(t0, c.timeline.points[n-1].at)
		}
		return last
	}

	scheduled := map[string]JobTrace{}
	var fcfsClock float64 // FCFS fairness: each head job starts no earlier than the previous head's start
	for i := 0; i < len(batch); i++ {
		j := batch[i]
		start := earliestStart(j, math.Max(j.SubmitAt, 0))
		// FCFS: never start before an earlier-submitted job's start unless
		// backfilling is on (EASY: allowed if it does not delay any
		// earlier job's committed start — commitments are already in the
		// timeline, so any feasible slot respects them).
		if !c.EnableBackfill && start < fcfsClock {
			start = earliestStart(j, fcfsClock)
		}
		c.timeline.add(start, start+j.Duration, j.Cores)
		scheduled[j.ID] = JobTrace{Job: j, StartS: start, EndS: start + j.Duration, WaitS: start - j.SubmitAt}
		if start > fcfsClock {
			fcfsClock = start
		}
	}
	for _, tr := range scheduled {
		traces = append(traces, tr)
	}
	sort.Slice(traces, func(i, j int) bool {
		if traces[i].StartS != traces[j].StartS {
			return traces[i].StartS < traces[j].StartS
		}
		return traces[i].Job.ID < traces[j].Job.ID
	})
	return traces, nil
}

// WaitStats summarizes waits for a set of traces, split by reservation use.
func WaitStats(traces []JobTrace) (batchMean, reservedMean float64) {
	var bSum, rSum float64
	var bN, rN int
	for _, tr := range traces {
		if tr.Job.ReservationID != "" {
			rSum += tr.WaitS
			rN++
		} else {
			bSum += tr.WaitS
			bN++
		}
	}
	if bN > 0 {
		batchMean = bSum / float64(bN)
	}
	if rN > 0 {
		reservedMean = rSum / float64(rN)
	}
	return batchMean, reservedMean
}

// SimulateOnTestbed is a convenience wiring a Cluster over the HPC portion
// of the standard testbed (128 cores).
func SimulateOnTestbed() (*Cluster, error) {
	inf := continuum.Testbed()
	cores := 0
	for _, n := range inf.NodesByKind(continuum.HPC) {
		cores += n.Cores
	}
	return NewCluster(cores)
}
