package interactive

import (
	"math"
	"strings"
	"testing"

	"repro/internal/workflow"
)

func TestAnalyzeDefinesAndUses(t *testing.T) {
	c := Cell{ID: "c1", Code: "import numpy\nx = numpy.zeros(10)\ny = x + z\nprint(y)\n# x = hidden"}
	info := Analyze(c)
	wantDef := []string{"numpy", "x", "y"}
	if strings.Join(info.Defines, ",") != strings.Join(wantDef, ",") {
		t.Errorf("defines = %v, want %v", info.Defines, wantDef)
	}
	// z is used before definition; numpy and x are defined locally first.
	if strings.Join(info.Uses, ",") != "z" {
		t.Errorf("uses = %v, want [z]", info.Uses)
	}
}

func TestAnalyzeEdgeCases(t *testing.T) {
	// Comparison operators are not assignments.
	info := Analyze(Cell{ID: "c", Code: "a == b\nc <= d\ne != f"})
	if len(info.Defines) != 0 {
		t.Errorf("comparisons defined %v", info.Defines)
	}
	if len(info.Uses) != 6 {
		t.Errorf("uses = %v, want 6 identifiers", info.Uses)
	}
	// Tuple assignment.
	info = Analyze(Cell{ID: "c", Code: "a, b = f(x)"})
	if strings.Join(info.Defines, ",") != "a,b" {
		t.Errorf("tuple defines = %v", info.Defines)
	}
	// String literals are not identifiers.
	info = Analyze(Cell{ID: "c", Code: `s = "hello world" + name`})
	if strings.Join(info.Uses, ",") != "name" {
		t.Errorf("string literal leaked identifiers: %v", info.Uses)
	}
	// Attribute access after dot skipped.
	info = Analyze(Cell{ID: "c", Code: "v = obj.field.sub"})
	if strings.Join(info.Uses, ",") != "obj" {
		t.Errorf("attribute uses = %v, want [obj]", info.Uses)
	}
}

func sampleNotebook() *Notebook {
	return &Notebook{
		Name: "analysis",
		Cells: []Cell{
			{ID: "load", Code: "import pandas\ndata = pandas.read('x.csv')"},
			{ID: "clean", Code: "clean = data.dropna()"},
			{ID: "stats", Code: "mean = clean.mean()"},
			{ID: "plot", Code: "fig = clean.plotAgainst(mean)"},
		},
	}
}

func TestCompileNotebookDAG(t *testing.T) {
	wf, err := sampleNotebook().Compile(CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if wf.Len() != 4 {
		t.Fatalf("steps = %d", wf.Len())
	}
	s, _ := wf.Step("clean")
	if len(s.After) != 1 || s.After[0] != "load" {
		t.Errorf("clean deps = %v", s.After)
	}
	s, _ = wf.Step("plot")
	if len(s.After) != 2 { // clean + stats
		t.Errorf("plot deps = %v", s.After)
	}
	// stats and plot both read clean; levels: load → clean → stats → plot?
	// plot depends on stats(mean) and clean → level 3.
	levels, err := wf.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 4 {
		t.Errorf("levels = %v", levels)
	}
}

func TestCompileShadowing(t *testing.T) {
	nb := &Notebook{Name: "shadow", Cells: []Cell{
		{ID: "a", Code: "x = 1"},
		{ID: "b", Code: "x = 2"},
		{ID: "c", Code: "y = x"},
	}}
	wf, err := nb.Compile(CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := wf.Step("c")
	if len(s.After) != 1 || s.After[0] != "b" {
		t.Errorf("c should depend on the latest definition: %v", s.After)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := (&Notebook{Name: "e"}).Compile(CompileOptions{}); err == nil {
		t.Error("empty notebook accepted")
	}
	nb := &Notebook{Name: "unbound", Cells: []Cell{{ID: "a", Code: "y = ghost + 1"}}}
	if _, err := nb.Compile(CompileOptions{}); err == nil {
		t.Error("unbound variable accepted")
	}
	dup := &Notebook{Name: "dup", Cells: []Cell{{ID: "a", Code: "x = 1"}, {ID: "a", Code: "y = 2"}}}
	if _, err := dup.Compile(CompileOptions{}); err == nil {
		t.Error("duplicate cell accepted")
	}
}

func TestCompileOptionsApplied(t *testing.T) {
	wf, err := sampleNotebook().Compile(CompileOptions{
		WorkGFlop:   func(c Cell) float64 { return 7 },
		OutputBytes: func(c Cell) float64 { return 42 },
	})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := wf.Step("load")
	if s.WorkGFlop != 7 || s.OutputBytes != 42 {
		t.Errorf("options not applied: %+v", s)
	}
}

func TestCompiledNotebookIsRunnable(t *testing.T) {
	wf, err := sampleNotebook().Compile(CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.TopoOrder(); err != nil {
		t.Fatal(err)
	}
	_, cp, err := wf.CriticalPath(func(s *workflow.Step) float64 { return s.WorkGFlop })
	if err != nil || cp <= 0 {
		t.Errorf("critical path = %v, %v", cp, err)
	}
}

func TestTimeline(t *testing.T) {
	tl := newTimeline(10)
	tl.add(0, 10, 4)
	tl.add(5, 15, 3)
	if got := tl.maxUsage(0, 5); got != 4 {
		t.Errorf("maxUsage(0,5) = %d", got)
	}
	if got := tl.maxUsage(0, 20); got != 7 {
		t.Errorf("maxUsage(0,20) = %d", got)
	}
	if got := tl.maxUsage(12, 20); got != 3 {
		t.Errorf("maxUsage(12,20) = %d", got)
	}
	if !tl.fits(0, 5, 6) || tl.fits(5, 10, 4) {
		t.Error("fits miscalculates")
	}
	// Boundary: a job ending exactly when another starts shares no instant.
	tl2 := newTimeline(4)
	tl2.add(0, 10, 4)
	if !tl2.fits(10, 20, 4) {
		t.Error("back-to-back intervals should not conflict")
	}
}

func TestClusterFCFS(t *testing.T) {
	c, err := NewCluster(10)
	if err != nil {
		t.Fatal(err)
	}
	// Two 6-core jobs cannot overlap on 10 cores.
	_ = c.Submit(Job{ID: "j1", Cores: 6, Duration: 100, SubmitAt: 0})
	_ = c.Submit(Job{ID: "j2", Cores: 6, Duration: 100, SubmitAt: 0})
	traces, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]JobTrace{}
	for _, tr := range traces {
		byID[tr.Job.ID] = tr
	}
	if byID["j1"].StartS != 0 {
		t.Errorf("j1 start = %v", byID["j1"].StartS)
	}
	if byID["j2"].StartS != 100 {
		t.Errorf("j2 start = %v, want 100", byID["j2"].StartS)
	}
	if byID["j2"].WaitS != 100 {
		t.Errorf("j2 wait = %v", byID["j2"].WaitS)
	}
}

func TestClusterBackfill(t *testing.T) {
	c, _ := NewCluster(10)
	// j1 runs now (8 cores); j2 (8 cores) must wait until 100; j3 (2 cores,
	// short) can backfill immediately alongside j1.
	_ = c.Submit(Job{ID: "j1", Cores: 8, Duration: 100, SubmitAt: 0})
	_ = c.Submit(Job{ID: "j2", Cores: 8, Duration: 50, SubmitAt: 1})
	_ = c.Submit(Job{ID: "j3", Cores: 2, Duration: 10, SubmitAt: 2})
	traces, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]JobTrace{}
	for _, tr := range traces {
		byID[tr.Job.ID] = tr
	}
	if byID["j3"].StartS != 2 {
		t.Errorf("j3 should backfill at submit: start = %v", byID["j3"].StartS)
	}
	if byID["j2"].StartS != 100 {
		t.Errorf("j2 start = %v, want 100", byID["j2"].StartS)
	}
}

func TestReservationGivesInstantAccess(t *testing.T) {
	c, _ := NewCluster(10)
	// Fill the machine with batch work.
	_ = c.Submit(Job{ID: "big", Cores: 10, Duration: 1000, SubmitAt: 0})
	// Without a reservation, an interactive session would wait 1000 s.
	_ = c.Submit(Job{ID: "late", Cores: 4, Duration: 50, SubmitAt: 10})
	// The reservation carves 4 cores at t=500 — but it must be made before
	// the batch job fills the machine, so reserve on a fresh cluster.
	c2, _ := NewCluster(10)
	if err := c2.Reserve(Reservation{ID: "res1", Cores: 4, Start: 500, End: 600}); err != nil {
		t.Fatal(err)
	}
	_ = c2.Submit(Job{ID: "big", Cores: 10, Duration: 1000, SubmitAt: 0})
	_ = c2.Submit(Job{ID: "session", Cores: 4, Duration: 80, SubmitAt: 450, ReservationID: "res1"})
	traces, err := c2.Run()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]JobTrace{}
	for _, tr := range traces {
		byID[tr.Job.ID] = tr
	}
	if byID["session"].StartS != 500 {
		t.Errorf("session start = %v, want 500 (reservation start)", byID["session"].StartS)
	}
	if byID["session"].WaitS != 50 {
		t.Errorf("session wait = %v, want 50", byID["session"].WaitS)
	}
	// The 10-core batch job cannot start at 0 anymore: the reservation
	// blocks [500,600) and the job would span it.
	if byID["big"].StartS < 600 && byID["big"].StartS+1000 > 500 && byID["big"].StartS != 600 {
		// It must start at 600 (after the reservation) since 10 cores never
		// fit alongside 4 reserved.
		t.Errorf("big start = %v, want 600", byID["big"].StartS)
	}
	bm, rm := WaitStats(traces)
	if rm >= bm {
		t.Errorf("reserved mean wait %v should beat batch mean %v", rm, bm)
	}
}

func TestReservationValidation(t *testing.T) {
	c, _ := NewCluster(8)
	if err := c.Reserve(Reservation{ID: "", Cores: 1, Start: 0, End: 1}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := c.Reserve(Reservation{ID: "r", Cores: 9, Start: 0, End: 1}); err == nil {
		t.Error("oversized reservation accepted")
	}
	if err := c.Reserve(Reservation{ID: "r", Cores: 1, Start: 5, End: 5}); err == nil {
		t.Error("empty window accepted")
	}
	if err := c.Reserve(Reservation{ID: "r", Cores: 5, Start: 0, End: 10}); err != nil {
		t.Fatal(err)
	}
	if err := c.Reserve(Reservation{ID: "r", Cores: 1, Start: 20, End: 30}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if err := c.Reserve(Reservation{ID: "r2", Cores: 5, Start: 5, End: 15}); err == nil {
		t.Error("overlapping over-capacity reservation accepted")
	}
	if err := c.Reserve(Reservation{ID: "r3", Cores: 3, Start: 5, End: 15}); err != nil {
		t.Errorf("fitting reservation rejected: %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	c, _ := NewCluster(8)
	_ = c.Reserve(Reservation{ID: "res", Cores: 4, Start: 100, End: 200})
	bad := []Job{
		{},
		{ID: "a", Cores: 0, Duration: 1},
		{ID: "a", Cores: 1, Duration: 0},
		{ID: "a", Cores: 99, Duration: 1},
		{ID: "a", Cores: 1, Duration: 1, ReservationID: "ghost"},
		{ID: "a", Cores: 8, Duration: 1, ReservationID: "res"},                // > reservation cores
		{ID: "a", Cores: 1, Duration: 500, ReservationID: "res"},              // longer than window
		{ID: "a", Cores: 1, Duration: 1, SubmitAt: 150, ReservationID: "res"}, // submitted late
	}
	for i, j := range bad {
		if err := c.Submit(j); err == nil {
			t.Errorf("bad job %d accepted", i)
		}
	}
	if err := c.Submit(Job{ID: "ok", Cores: 2, Duration: 10}); err != nil {
		t.Error(err)
	}
	if err := c.Submit(Job{ID: "ok", Cores: 2, Duration: 10}); err == nil {
		t.Error("duplicate job accepted")
	}
}

func TestCalendarBookingAndCredits(t *testing.T) {
	cal, err := NewCalendar(16, 10) // 10 credits per core-hour
	if err != nil {
		t.Fatal(err)
	}
	if err := cal.Deposit("ada", 100); err != nil {
		t.Fatal(err)
	}
	// 4 cores × 0.5 h × 10 = 20 credits.
	b, err := cal.Book("ada", 4, 0, 1800)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Cost-20) > 1e-9 {
		t.Errorf("cost = %v, want 20", b.Cost)
	}
	if math.Abs(cal.Balance("ada")-80) > 1e-9 {
		t.Errorf("balance = %v, want 80", cal.Balance("ada"))
	}
	// Insufficient credits.
	if _, err := cal.Book("ada", 16, 0, 36000); err == nil {
		t.Error("unaffordable booking accepted")
	}
	// Capacity.
	if _, err := cal.Book("ada", 13, 0, 1800); err == nil {
		t.Error("over-capacity booking accepted")
	}
	// Cancel refunds.
	if err := cal.Cancel(b.ID); err != nil {
		t.Fatal(err)
	}
	if math.Abs(cal.Balance("ada")-100) > 1e-9 {
		t.Errorf("post-refund balance = %v", cal.Balance("ada"))
	}
	if err := cal.Cancel(b.ID); err == nil {
		t.Error("double cancel accepted")
	}
}

func TestCalendarValidation(t *testing.T) {
	if _, err := NewCalendar(0, 1); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewCalendar(1, 0); err == nil {
		t.Error("zero rate accepted")
	}
	cal, _ := NewCalendar(8, 1)
	if _, err := cal.Book("ghost", 1, 0, 1); err == nil {
		t.Error("unknown user accepted")
	}
	_ = cal.Deposit("u", 1000)
	if _, err := cal.Book("u", 0, 0, 1); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := cal.Book("u", 1, 5, 5); err == nil {
		t.Error("empty window accepted")
	}
	if err := cal.Deposit("", 5); err == nil {
		t.Error("empty user accepted")
	}
	if err := cal.Deposit("u", -1); err == nil {
		t.Error("negative deposit accepted")
	}
}

// End-to-end BookedSlurm flow: book on the calendar, convert to a queue
// reservation, run an interactive session through it.
func TestBookingToReservationFlow(t *testing.T) {
	cal, _ := NewCalendar(32, 5)
	_ = cal.Deposit("eva", 1000)
	b, err := cal.Book("eva", 8, 3600, 7200)
	if err != nil {
		t.Fatal(err)
	}
	cluster, _ := SimulateOnTestbed()
	if err := cluster.Reserve(b.ToReservation()); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Submit(Job{ID: "nb", Cores: 8, Duration: 1800, SubmitAt: 3000, ReservationID: b.ID}); err != nil {
		t.Fatal(err)
	}
	traces, err := cluster.Run()
	if err != nil {
		t.Fatal(err)
	}
	if traces[0].StartS != 3600 {
		t.Errorf("interactive session start = %v, want 3600", traces[0].StartS)
	}
	if got := len(cal.Bookings()); got != 1 {
		t.Errorf("bookings = %d", got)
	}
}
