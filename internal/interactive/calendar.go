package interactive

import (
	"errors"
	"fmt"
	"sort"
)

// This file implements the BookedSlurm mechanism: a web-calendar-style
// booking front-end over cluster reservations, with pay-per-use accounting
// in a digital currency ("credits"). Bookings convert 1:1 into queue
// reservations; cancelling refunds the unused credits.

// Account is a user's credit balance.
type Account struct {
	User    string
	Credits float64
}

// Booking is one calendar entry.
type Booking struct {
	ID    string
	User  string
	Cores int
	Start float64
	End   float64
	Cost  float64
}

// Calendar manages bookings against a reservable capacity.
type Calendar struct {
	// ReservableCores caps concurrent booked cores (typically a fraction
	// of the cluster so batch work is never starved).
	ReservableCores int
	// CreditsPerCoreHour is the pay-per-use rate.
	CreditsPerCoreHour float64

	accounts map[string]*Account
	bookings map[string]*Booking
	nextID   int
}

// NewCalendar returns a calendar with the given reservable capacity and
// rate.
func NewCalendar(reservableCores int, rate float64) (*Calendar, error) {
	if reservableCores <= 0 {
		return nil, fmt.Errorf("interactive: non-positive reservable capacity %d", reservableCores)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("interactive: non-positive rate %v", rate)
	}
	return &Calendar{
		ReservableCores:    reservableCores,
		CreditsPerCoreHour: rate,
		accounts:           map[string]*Account{},
		bookings:           map[string]*Booking{},
	}, nil
}

// Deposit credits a user account (creating it if needed).
func (c *Calendar) Deposit(user string, credits float64) error {
	if user == "" {
		return errors.New("interactive: empty user")
	}
	if credits <= 0 {
		return fmt.Errorf("interactive: non-positive deposit %v", credits)
	}
	a, ok := c.accounts[user]
	if !ok {
		a = &Account{User: user}
		c.accounts[user] = a
	}
	a.Credits += credits
	return nil
}

// Balance returns a user's credit balance.
func (c *Calendar) Balance(user string) float64 {
	if a, ok := c.accounts[user]; ok {
		return a.Credits
	}
	return 0
}

// bookedAt returns the peak booked cores over [from, to).
func (c *Calendar) bookedAt(from, to float64) int {
	tl := newTimeline(c.ReservableCores)
	for _, b := range c.bookings {
		tl.add(b.Start, b.End, b.Cores)
	}
	return tl.maxUsage(from, to)
}

// Book creates a booking for user over [start, end) with cores cores,
// charging cores × hours × rate credits. It fails (without side effects)
// when capacity or credits are insufficient.
func (c *Calendar) Book(user string, cores int, start, end float64) (*Booking, error) {
	a, ok := c.accounts[user]
	if !ok {
		return nil, fmt.Errorf("interactive: unknown user %q", user)
	}
	if cores <= 0 || cores > c.ReservableCores {
		return nil, fmt.Errorf("interactive: cores %d outside (0,%d]", cores, c.ReservableCores)
	}
	if end <= start || start < 0 {
		return nil, fmt.Errorf("interactive: invalid window [%v,%v)", start, end)
	}
	if c.bookedAt(start, end)+cores > c.ReservableCores {
		return nil, fmt.Errorf("interactive: calendar full for [%v,%v)", start, end)
	}
	cost := float64(cores) * (end - start) / 3600 * c.CreditsPerCoreHour
	if a.Credits < cost {
		return nil, fmt.Errorf("interactive: user %q has %.2f credits, booking costs %.2f", user, a.Credits, cost)
	}
	a.Credits -= cost
	c.nextID++
	b := &Booking{
		ID:    fmt.Sprintf("bk-%04d", c.nextID),
		User:  user,
		Cores: cores,
		Start: start,
		End:   end,
		Cost:  cost,
	}
	c.bookings[b.ID] = b
	return b, nil
}

// Cancel removes a booking and refunds its cost.
func (c *Calendar) Cancel(bookingID string) error {
	b, ok := c.bookings[bookingID]
	if !ok {
		return fmt.Errorf("interactive: unknown booking %q", bookingID)
	}
	c.accounts[b.User].Credits += b.Cost
	delete(c.bookings, bookingID)
	return nil
}

// Bookings returns all bookings sorted by start time then ID.
func (c *Calendar) Bookings() []Booking {
	out := make([]Booking, 0, len(c.bookings))
	for _, b := range c.bookings {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// ToReservation converts a booking into a queue reservation.
func (b *Booking) ToReservation() Reservation {
	return Reservation{ID: b.ID, Cores: b.Cores, Start: b.Start, End: b.End}
}
