// Package interactive implements the interactive-computing substrate
// (Section 2.1 of the paper): the Jupyter Workflow model — notebook cells
// whose data dependencies are extracted semi-automatically and compiled
// into a workflow DAG — plus an ICS/SLURM-style batch queue with advance
// reservations (queue.go) and a BookedSlurm-style booking calendar with
// pay-per-use credits (calendar.go).
package interactive

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"unicode"

	"repro/internal/workflow"
)

// Cell is one notebook cell: an identifier and a code body in a small
// Python-like assignment language. Supported statements, one per line:
//
//	x = <expression>        (defines x, uses identifiers in the expression)
//	import name             (defines name)
//	<expression>            (uses identifiers)
//	# comment               (ignored)
type Cell struct {
	ID   string
	Code string
}

// CellInfo is the dependency analysis of one cell.
type CellInfo struct {
	ID      string
	Defines []string // variables assigned in the cell, sorted
	Uses    []string // free variables read before (or without) definition, sorted
}

// keywords are excluded from identifier extraction.
var keywords = map[string]bool{
	"import": true, "print": true, "def": true, "return": true, "for": true,
	"in": true, "if": true, "else": true, "while": true, "and": true,
	"or": true, "not": true, "True": true, "False": true, "None": true,
	"lambda": true, "range": true, "len": true,
}

// Analyze extracts the defined and used variables of a cell via a
// lightweight AST-like pass, the mechanism Jupyter Workflow applies to real
// Python cells.
func Analyze(c Cell) CellInfo {
	defined := map[string]bool{}
	uses := map[string]bool{}
	for _, rawLine := range strings.Split(c.Code, "\n") {
		line := strings.TrimSpace(rawLine)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if name, ok := strings.CutPrefix(line, "import "); ok {
			defined[strings.TrimSpace(name)] = true
			continue
		}
		lhs, rhs, isAssign := splitAssign(line)
		if isAssign {
			for _, id := range identifiers(rhs) {
				if !defined[id] {
					uses[id] = true
				}
			}
			for _, v := range strings.Split(lhs, ",") {
				v = strings.TrimSpace(v)
				if isIdentifier(v) {
					defined[v] = true
				}
			}
			continue
		}
		for _, id := range identifiers(line) {
			if !defined[id] {
				uses[id] = true
			}
		}
	}
	info := CellInfo{ID: c.ID}
	for v := range defined {
		info.Defines = append(info.Defines, v)
	}
	for v := range uses {
		info.Uses = append(info.Uses, v)
	}
	sort.Strings(info.Defines)
	sort.Strings(info.Uses)
	return info
}

// splitAssign splits "lhs = rhs" on the first top-level '=' that is not
// part of ==, <=, >=, !=.
func splitAssign(line string) (lhs, rhs string, ok bool) {
	for i := 0; i < len(line); i++ {
		if line[i] != '=' {
			continue
		}
		if i+1 < len(line) && line[i+1] == '=' {
			i++ // skip ==
			continue
		}
		if i > 0 && (line[i-1] == '=' || line[i-1] == '<' || line[i-1] == '>' || line[i-1] == '!') {
			continue
		}
		return strings.TrimSpace(line[:i]), strings.TrimSpace(line[i+1:]), true
	}
	return "", "", false
}

// identifiers extracts identifier tokens from an expression, skipping
// keywords, attribute accesses after '.', and string literals.
func identifiers(expr string) []string {
	var out []string
	inString := byte(0)
	i := 0
	prevDot := false
	for i < len(expr) {
		ch := expr[i]
		if inString != 0 {
			if ch == inString {
				inString = 0
			}
			i++
			continue
		}
		switch {
		case ch == '\'' || ch == '"':
			inString = ch
			i++
		case unicode.IsLetter(rune(ch)) || ch == '_':
			j := i
			for j < len(expr) && (unicode.IsLetter(rune(expr[j])) || unicode.IsDigit(rune(expr[j])) || expr[j] == '_') {
				j++
			}
			tok := expr[i:j]
			if !keywords[tok] && !prevDot {
				out = append(out, tok)
			}
			i = j
			prevDot = false
		case ch == '.':
			prevDot = true
			i++
		default:
			prevDot = false
			i++
		}
	}
	return out
}

func isIdentifier(s string) bool {
	if s == "" || keywords[s] {
		return false
	}
	for i, r := range s {
		if !(unicode.IsLetter(r) || r == '_' || (i > 0 && unicode.IsDigit(r))) {
			return false
		}
	}
	return true
}

// Notebook is an ordered list of cells.
type Notebook struct {
	Name  string
	Cells []Cell
}

// CompileOptions tune the notebook → workflow lowering.
type CompileOptions struct {
	// WorkGFlop assigns compute work per cell (for simulation); nil gives
	// every cell 1 GFlop.
	WorkGFlop func(Cell) float64
	// OutputBytes sizes each cell's produced artifact; nil gives 1 MB.
	OutputBytes func(Cell) float64
}

// Compile extracts each cell's dependencies and builds the workflow DAG:
// cell B depends on cell A when A is the latest preceding cell defining a
// variable B uses — exactly the Jupyter Workflow semantics (later
// definitions shadow earlier ones). Variables used but never defined are an
// error (an unbound notebook).
func (n *Notebook) Compile(opts CompileOptions) (*workflow.Workflow, error) {
	if len(n.Cells) == 0 {
		return nil, errors.New("interactive: empty notebook")
	}
	work := opts.WorkGFlop
	if work == nil {
		work = func(Cell) float64 { return 1 }
	}
	size := opts.OutputBytes
	if size == nil {
		size = func(Cell) float64 { return 1e6 }
	}
	wf := workflow.New(n.Name)
	lastDef := map[string]string{} // variable → most recent defining cell
	seen := map[string]bool{}
	for _, c := range n.Cells {
		if seen[c.ID] {
			return nil, fmt.Errorf("interactive: duplicate cell %q", c.ID)
		}
		seen[c.ID] = true
		info := Analyze(c)
		depSet := map[string]bool{}
		for _, u := range info.Uses {
			def, ok := lastDef[u]
			if !ok {
				return nil, fmt.Errorf("interactive: cell %q uses undefined variable %q", c.ID, u)
			}
			if def != c.ID {
				depSet[def] = true
			}
		}
		deps := make([]string, 0, len(depSet))
		for d := range depSet {
			deps = append(deps, d)
		}
		sort.Strings(deps)
		if err := wf.Add(workflow.Step{
			ID:          c.ID,
			After:       deps,
			WorkGFlop:   work(c),
			OutputBytes: size(c),
		}); err != nil {
			return nil, err
		}
		for _, d := range info.Defines {
			lastDef[d] = c.ID
		}
	}
	if err := wf.Validate(); err != nil {
		return nil, err
	}
	return wf, nil
}
