package runpack

import (
	"errors"
	"fmt"

	"repro/internal/cas"
	"repro/internal/jcs"
)

// The distinct verification failures, ordered as Verify checks them. Each
// tamper class maps to exactly one sentinel so callers (and tests) can tell
// a reordered manifest from a flipped artifact byte.
var (
	// ErrFormat: the manifest does not declare a supported format.
	ErrFormat = errors.New("runpack: unsupported manifest format")
	// ErrNotCanonical: the manifest bytes are not in jcs canonical form
	// (reordered keys, stray whitespace, non-canonical numbers).
	ErrNotCanonical = errors.New("runpack: manifest is not canonical JSON")
	// ErrManifestDigest: the manifest bytes do not hash to the claimed ID.
	ErrManifestDigest = errors.New("runpack: manifest digest mismatch")
	// ErrSignature: the signature does not verify over the manifest bytes.
	ErrSignature = errors.New("runpack: signature verification failed")
	// ErrArtifactMissing: the manifest lists an artifact with no blob.
	ErrArtifactMissing = errors.New("runpack: artifact blob missing")
	// ErrArtifactSize: a blob's length differs from the manifest (the
	// truncated-blob signature — checked before the digest so truncation
	// reports as what it is).
	ErrArtifactSize = errors.New("runpack: artifact size mismatch")
	// ErrArtifactDigest: a blob's bytes do not hash to the manifest digest.
	ErrArtifactDigest = errors.New("runpack: artifact digest mismatch")
	// ErrArtifactUnknown: the pack carries a blob the manifest never sealed.
	ErrArtifactUnknown = errors.New("runpack: artifact not in manifest")
)

// VerifyOpts selects how the signature is checked. Exactly one of Key /
// PubKey should be set; with neither, signature verification is skipped
// (integrity only — digests still verify) and SkipSignature must be set
// explicitly to acknowledge it.
type VerifyOpts struct {
	// Key verifies with the full signing key (HMAC secret or ed25519
	// private key).
	Key *Key
	// PubKey verifies an ed25519 signature with only the hex public key —
	// the offline client path.
	PubKey string
	// SkipSignature acknowledges signature-less verification.
	SkipSignature bool
}

// Verify checks the pack end to end: manifest format, canonical form,
// manifest digest vs ID, signature, and every artifact blob's size and
// digest, plus the absence of unsealed blobs. The first failure is
// returned, wrapped around its sentinel.
func (p *Pack) Verify(opts VerifyOpts) error {
	if p.Manifest.Format != Format {
		return fmt.Errorf("%w: %q", ErrFormat, p.Manifest.Format)
	}
	if !jcs.IsCanonical(p.Raw) {
		return fmt.Errorf("%w (re-encode with jcs.Canonicalize to inspect)", ErrNotCanonical)
	}
	if got := string(cas.KeyOf(p.Raw)); got != p.ID {
		return fmt.Errorf("%w: manifest hashes to %s, pack claims %s", ErrManifestDigest, got[:12], short(p.ID))
	}
	switch {
	case opts.Key != nil:
		if err := p.Sig.VerifyWith(*opts.Key, p.Raw); err != nil {
			return err
		}
	case opts.PubKey != "":
		if err := p.Sig.VerifyPublic(opts.PubKey, p.Raw); err != nil {
			return err
		}
	case !opts.SkipSignature:
		return fmt.Errorf("%w: no key provided (set VerifyOpts.SkipSignature for integrity-only checks)", ErrSignature)
	}
	sealed := make(map[string]bool, len(p.Manifest.Artifacts))
	for _, ref := range p.Manifest.Artifacts {
		sealed[ref.Name] = true
		body, ok := p.Blobs[ref.Name]
		if !ok {
			return fmt.Errorf("%w: %q", ErrArtifactMissing, ref.Name)
		}
		if int64(len(body)) != ref.Bytes {
			return fmt.Errorf("%w: %q is %d bytes, manifest sealed %d", ErrArtifactSize, ref.Name, len(body), ref.Bytes)
		}
		if got := string(cas.KeyOf(body)); got != ref.SHA256 {
			return fmt.Errorf("%w: %q hashes to %s, manifest sealed %s", ErrArtifactDigest, ref.Name, got[:12], short(ref.SHA256))
		}
	}
	for name := range p.Blobs {
		if !sealed[name] {
			return fmt.Errorf("%w: %q", ErrArtifactUnknown, name)
		}
	}
	return nil
}

// firstDiffOffset returns the first byte offset at which a and b differ
// (-1 when equal). Used by Diff to report the Missier-style byte-level
// location of artifact drift.
func firstDiffOffset(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}
