package runpack

import (
	"fmt"
	"strings"
	"testing"
)

// benchPackInput mirrors a realistic sealed run: eight artifacts totalling
// ~80 KB (the full-report scale) plus a metric map.
func benchPackInput() (Manifest, map[string]string) {
	m := Manifest{
		Experiment:  "report.full",
		Fingerprint: strings.Repeat("cd", 32),
		Params:      map[string]any{"sections": 8, "format": "text"},
		RootSeed:    1,
		Seed:        987654321,
		Metrics:     map[string]float64{},
		Provenance:  Provenance{Registry: "sms", Experiments: 35, Engine: "sms-exp/1", Store: "none"},
	}
	arts := map[string]string{}
	for i := 0; i < 8; i++ {
		arts[fmt.Sprintf("section-%d", i)] = strings.Repeat(fmt.Sprintf("artifact %d line\n", i), 640)
		m.Metrics[fmt.Sprintf("metric-%d", i)] = float64(i) * 1.25
	}
	return m, arts
}

func BenchmarkRunpackPack(b *testing.B) {
	m, arts := benchPackInput()
	key := DevKey()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(m, arts, key); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunpackVerify(b *testing.B) {
	m, arts := benchPackInput()
	key := DevKey()
	p, err := Build(m, arts, key)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Verify(VerifyOpts{Key: &key}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunpackVerifyEd25519(b *testing.B) {
	m, arts := benchPackInput()
	key := NewEd25519Key([]byte("bench"))
	p, err := Build(m, arts, key)
	if err != nil {
		b.Fatal(err)
	}
	pub := key.Public()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Verify(VerifyOpts{PubKey: pub}); err != nil {
			b.Fatal(err)
		}
	}
}
