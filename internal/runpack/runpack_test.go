package runpack

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cas"
	"repro/internal/jcs"
)

func testManifest() Manifest {
	return Manifest{
		Experiment:  "continuum/test",
		Fingerprint: strings.Repeat("ab", 32),
		Params:      map[string]any{"n": 3, "mode": "fast"},
		RootSeed:    1,
		Seed:        424242,
		Metrics:     map[string]float64{"makespan_s": 12.5, "energy_j": 300},
		Provenance:  Provenance{Registry: "sms", Experiments: 35, Engine: "sms-exp/1", Store: "none"},
	}
}

func testArtifacts() map[string]string {
	return map[string]string{
		"table":  "col1 col2\n1 2\n",
		"report": strings.Repeat("line of report text\n", 50),
	}
}

func mustBuild(t *testing.T, key Key) *Pack {
	t.Helper()
	p, err := Build(testManifest(), testArtifacts(), key)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildVerifyRoundTripHMAC(t *testing.T) {
	key := NewHMACKey([]byte("secret"))
	p := mustBuild(t, key)
	if err := p.Verify(VerifyOpts{Key: &key}); err != nil {
		t.Fatalf("fresh pack fails verify: %v", err)
	}
	if p.ID != string(cas.KeyOf(p.Raw)) {
		t.Fatal("pack ID is not the manifest digest")
	}
	if !jcs.IsCanonical(p.Raw) {
		t.Fatal("manifest bytes are not canonical")
	}
	// Deterministic: building twice yields byte-identical manifests and IDs.
	q := mustBuild(t, key)
	if !bytes.Equal(p.Raw, q.Raw) || p.ID != q.ID || p.Sig != q.Sig {
		t.Fatal("building the same manifest twice drifted")
	}
}

func TestBuildVerifyRoundTripEd25519(t *testing.T) {
	key := NewEd25519Key([]byte("server material"))
	p := mustBuild(t, key)
	if err := p.Verify(VerifyOpts{Key: &key}); err != nil {
		t.Fatalf("private-key verify: %v", err)
	}
	if err := p.Verify(VerifyOpts{PubKey: key.Public()}); err != nil {
		t.Fatalf("public-key verify: %v", err)
	}
	if key.Public() == "" || len(key.Public()) != 64 {
		t.Fatalf("unexpected public key %q", key.Public())
	}
}

func TestVerifyWithoutKeyRequiresAcknowledgement(t *testing.T) {
	p := mustBuild(t, DevKey())
	if err := p.Verify(VerifyOpts{}); !errors.Is(err, ErrSignature) {
		t.Fatalf("keyless verify must fail with ErrSignature, got %v", err)
	}
	if err := p.Verify(VerifyOpts{SkipSignature: true}); err != nil {
		t.Fatalf("acknowledged integrity-only verify: %v", err)
	}
}

// The four tamper cases of the issue, each with its distinct error.

func TestTamperFlippedArtifactByte(t *testing.T) {
	key := DevKey()
	p := mustBuild(t, key)
	body := p.Blobs["report"]
	body[len(body)/2] ^= 0x01
	if err := p.Verify(VerifyOpts{Key: &key}); !errors.Is(err, ErrArtifactDigest) {
		t.Fatalf("flipped artifact byte: want ErrArtifactDigest, got %v", err)
	}
}

func TestTamperReorderedManifestKeys(t *testing.T) {
	key := DevKey()
	p := mustBuild(t, key)
	// Swap two adjacent manifest keys (experiment ↔ fingerprint), keeping
	// the JSON valid, and recompute the ID so the digest check alone would
	// pass — the canonical-form check must still reject it.
	exp := `"experiment":"continuum/test"`
	fp := `"fingerprint":"` + strings.Repeat("ab", 32) + `"`
	ordered := []byte(exp + "," + fp)
	swapped := []byte(fp + "," + exp)
	reordered := bytes.Replace(p.Raw, ordered, swapped, 1)
	if bytes.Equal(reordered, p.Raw) {
		t.Fatal("test setup: adjacent key pair not found in canonical manifest")
	}
	p.Raw = reordered
	p.ID = string(cas.KeyOf(reordered))
	p.Sig.ID = p.ID
	if err := p.Verify(VerifyOpts{Key: &key}); !errors.Is(err, ErrNotCanonical) {
		t.Fatalf("non-canonical manifest: want ErrNotCanonical, got %v", err)
	}
}

func TestTamperTruncatedBlob(t *testing.T) {
	key := DevKey()
	p := mustBuild(t, key)
	p.Blobs["report"] = p.Blobs["report"][:10]
	if err := p.Verify(VerifyOpts{Key: &key}); !errors.Is(err, ErrArtifactSize) {
		t.Fatalf("truncated blob: want ErrArtifactSize, got %v", err)
	}
}

func TestTamperWrongSignatureKey(t *testing.T) {
	p := mustBuild(t, NewHMACKey([]byte("right key")))
	wrong := NewHMACKey([]byte("wrong key"))
	if err := p.Verify(VerifyOpts{Key: &wrong}); !errors.Is(err, ErrSignature) {
		t.Fatalf("wrong HMAC key: want ErrSignature, got %v", err)
	}
	edA := NewEd25519Key([]byte("a"))
	edB := NewEd25519Key([]byte("b"))
	q := mustBuild(t, edA)
	if err := q.Verify(VerifyOpts{Key: &edB}); !errors.Is(err, ErrSignature) {
		t.Fatalf("wrong ed25519 key: want ErrSignature, got %v", err)
	}
	if err := q.Verify(VerifyOpts{PubKey: edB.Public()}); !errors.Is(err, ErrSignature) {
		t.Fatalf("wrong ed25519 public key: want ErrSignature, got %v", err)
	}
}

func TestTamperFlippedManifestByte(t *testing.T) {
	key := DevKey()
	p := mustBuild(t, key)
	// Flip a byte inside a value (keeping JSON valid and canonical-looking
	// is not required — digest check runs after canonical check, so flip a
	// digit in the seed, which stays canonical).
	raw := bytes.Replace(p.Raw, []byte("424242"), []byte("424243"), 1)
	if bytes.Equal(raw, p.Raw) {
		t.Fatal("test setup: seed literal not found")
	}
	p.Raw = raw
	if err := p.Verify(VerifyOpts{Key: &key}); !errors.Is(err, ErrManifestDigest) {
		t.Fatalf("flipped manifest byte: want ErrManifestDigest, got %v", err)
	}
}

func TestTamperMissingAndUnknownBlobs(t *testing.T) {
	key := DevKey()
	p := mustBuild(t, key)
	delete(p.Blobs, "table")
	if err := p.Verify(VerifyOpts{Key: &key}); !errors.Is(err, ErrArtifactMissing) {
		t.Fatalf("missing blob: want ErrArtifactMissing, got %v", err)
	}
	p = mustBuild(t, key)
	p.Blobs["smuggled"] = []byte("x")
	if err := p.Verify(VerifyOpts{Key: &key}); !errors.Is(err, ErrArtifactUnknown) {
		t.Fatalf("unsealed blob: want ErrArtifactUnknown, got %v", err)
	}
}

func TestWriteReadDirRoundTrip(t *testing.T) {
	key := DevKey()
	p := mustBuild(t, key)
	dir := filepath.Join(t.TempDir(), "pack")
	if err := p.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	q, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Verify(VerifyOpts{Key: &key}); err != nil {
		t.Fatalf("re-read pack fails verify: %v", err)
	}
	if !bytes.Equal(p.Raw, q.Raw) || p.ID != q.ID {
		t.Fatal("dir round-trip changed manifest bytes or ID")
	}
	if len(q.Blobs) != len(p.Blobs) {
		t.Fatalf("dir round-trip lost blobs: %d vs %d", len(q.Blobs), len(p.Blobs))
	}
	// On-disk tamper: flip one byte of a stored blob, re-read, verify fails
	// with the artifact-digest error.
	var blobPath string
	filepath.Walk(filepath.Join(dir, "blobs", "objects"), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && blobPath == "" {
			blobPath = path
		}
		return nil
	})
	if blobPath == "" {
		t.Fatal("no blob files on disk")
	}
	data, err := os.ReadFile(blobPath)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0x80
	if err := os.WriteFile(blobPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// The blob no longer matches its content address, so ReadDir will not
	// find it under the sealed digest — verify reports it missing. Restore
	// the byte and instead corrupt the manifest to hit the digest error.
	q2, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	err = q2.Verify(VerifyOpts{Key: &key})
	if !errors.Is(err, ErrArtifactMissing) && !errors.Is(err, ErrArtifactDigest) {
		t.Fatalf("on-disk blob tamper: want artifact error, got %v", err)
	}
}

func TestBundleRoundTripAndOfflineVerify(t *testing.T) {
	key := NewEd25519Key([]byte("daemon"))
	p := mustBuild(t, key)
	data, err := p.EncodeBundle()
	if err != nil {
		t.Fatal(err)
	}
	if !jcs.IsCanonical(data) {
		t.Fatal("bundle encoding is not canonical")
	}
	q, err := DecodeBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	// Offline: only the public key, no shared secret.
	if err := q.Verify(VerifyOpts{PubKey: key.Public()}); err != nil {
		t.Fatalf("offline bundle verify: %v", err)
	}
	// A flipped artifact byte inside a decoded bundle is detected.
	q2, err := DecodeBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	q2.Blobs["table"][0] ^= 1
	if err := q2.Verify(VerifyOpts{PubKey: key.Public()}); !errors.Is(err, ErrArtifactDigest) {
		t.Fatalf("tampered bundle artifact: want ErrArtifactDigest, got %v", err)
	}
}

func TestDiffReportsFieldLevelDrift(t *testing.T) {
	key := DevKey()
	a := mustBuild(t, key)
	// Same manifest → identical.
	b := mustBuild(t, key)
	if d := Diff(a, b); !d.Equal() {
		t.Fatalf("identical packs diff: %s", d.Text())
	}

	// Drift one artifact byte, one metric, and the cache provenance.
	m := testManifest()
	m.Metrics["energy_j"] = 301
	m.Provenance.Cached = true
	arts := testArtifacts()
	arts["table"] = "col1 col2\n1 3\n" // differs at offset 12
	c, err := Build(m, arts, key)
	if err != nil {
		t.Fatal(err)
	}
	d := Diff(a, c)
	if !d.Material || !d.Provenance {
		t.Fatalf("expected material+provenance drift, got %+v", d)
	}
	text := d.Text()
	for _, want := range []string{
		`artifact "table"`, "first differing byte at offset 12",
		`metric "energy_j": 300 != 301 (drift +1)`,
		"provenance.cached: false != true",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("diff text missing %q:\n%s", want, text)
		}
	}
	// The untouched artifact does not appear.
	if strings.Contains(text, `artifact "report"`) {
		t.Errorf("diff text mentions unchanged artifact:\n%s", text)
	}

	// Provenance-only drift is not material.
	m2 := testManifest()
	m2.Provenance.Store = "disk"
	e, err := Build(m2, testArtifacts(), key)
	if err != nil {
		t.Fatal(err)
	}
	d2 := Diff(a, e)
	if d2.Material || !d2.Provenance {
		t.Fatalf("store drift must be provenance-only, got %+v", d2)
	}
}

func TestFirstDiffOffset(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"abc", "abc", -1},
		{"abc", "abd", 2},
		{"abc", "ab", 2},
		{"", "x", 0},
		{"", "", -1},
	}
	for _, c := range cases {
		if got := firstDiffOffset([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("firstDiffOffset(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
