// Package runpack seals an experiment run into a verifiable, replayable
// artifact: the maturity step that turns the repository's determinism from
// a test property into a shippable receipt.
//
// A runpack is a canonical-JSON manifest (internal/jcs) carrying the run's
// declarative identity — Spec fingerprint and params, root and derived
// seeds — plus the sorted SHA-256 digests of every artifact, the scalar
// metrics, and provenance (registry, engine version, cache state). The
// SHA-256 of the canonical manifest bytes is the runpack ID; an HMAC or
// ed25519 signature over those same bytes makes tampering detectable; the
// artifact blobs travel beside the manifest, content-addressed through
// internal/cas. Anyone holding the pack can:
//
//   - verify it offline (digest + signature + per-blob hashes),
//   - diff it against another pack field-by-field in the Missier
//     "provenance differencing" sense (which artifact, which byte offset,
//     which metric drifted), and
//   - regress it: re-execute the Spec through the registry and fail on any
//     byte of drift — the cross-machine reproducibility gate the mapped
//     literature (Missier et al., Diercks et al.) asks workflow systems
//     for.
//
// The package is deliberately independent of internal/exp: it speaks in
// names, seeds, and byte maps, so exp can layer RunPacked on top without
// an import cycle.
package runpack

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/cas"
	"repro/internal/jcs"
)

// Format is the manifest format identifier; bump on schema change.
const Format = "runpack/v1"

// BundleFormat identifies the single-document bundle encoding served over
// HTTP (manifest bytes + signature + base64 blobs in one canonical JSON).
const BundleFormat = "runpack-bundle/v1"

// ArtifactRef is one sealed artifact: its name, content digest, and size.
type ArtifactRef struct {
	Name   string `json:"name"`
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`
}

// Provenance records how the run was produced — the environment facts a
// verifier may legitimately see drift in without the result itself having
// drifted (engine upgrades, cache temperature).
type Provenance struct {
	// Registry names the experiment assembly that ran the spec.
	Registry string `json:"registry"`
	// Experiments is the registry size at pack time.
	Experiments int `json:"experiments"`
	// Engine is the experiment-engine version string.
	Engine string `json:"engine"`
	// Store is the cache backing of the run: "none", "mem", or "disk".
	Store string `json:"store"`
	// Cached reports whether the result was served from the store without
	// executing the body.
	Cached bool `json:"cached"`
}

// Manifest is the sealed identity of a run. Its canonical JSON encoding
// (internal/jcs) is the signature scope, and the SHA-256 of those bytes is
// the runpack ID.
type Manifest struct {
	Format      string             `json:"format"`
	Experiment  string             `json:"experiment"`
	Fingerprint string             `json:"fingerprint"`
	Params      map[string]any     `json:"params,omitempty"`
	RootSeed    int64              `json:"root_seed"`
	Seed        int64              `json:"seed"`
	Artifacts   []ArtifactRef      `json:"artifacts"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	Provenance  Provenance         `json:"provenance"`
}

// Pack is a sealed runpack held in memory: the manifest (parsed and raw),
// its ID, the signature, and the artifact blobs by name.
type Pack struct {
	Manifest Manifest
	// Raw is the canonical manifest encoding — the exact signature scope.
	Raw []byte
	// ID is the runpack identity: hex SHA-256 of Raw.
	ID  string
	Sig Signature
	// Blobs maps artifact name to bytes.
	Blobs map[string][]byte
}

// Build seals a manifest and its artifact bodies into a signed Pack. The
// manifest's Artifacts field is derived here from the bodies (sorted by
// name), so callers never hand-maintain digests.
func Build(m Manifest, artifacts map[string]string, key Key) (*Pack, error) {
	if m.Format == "" {
		m.Format = Format
	}
	if m.Format != Format {
		return nil, fmt.Errorf("runpack: unsupported manifest format %q", m.Format)
	}
	names := make([]string, 0, len(artifacts))
	for n := range artifacts {
		names = append(names, n)
	}
	sort.Strings(names)
	m.Artifacts = make([]ArtifactRef, 0, len(names))
	blobs := make(map[string][]byte, len(names))
	for _, n := range names {
		body := []byte(artifacts[n])
		m.Artifacts = append(m.Artifacts, ArtifactRef{
			Name: n, SHA256: string(cas.KeyOf(body)), Bytes: int64(len(body)),
		})
		blobs[n] = body
	}
	raw, err := jcs.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("runpack: encoding manifest: %w", err)
	}
	id := string(cas.KeyOf(raw))
	sig, err := key.Sign(id, raw)
	if err != nil {
		return nil, err
	}
	return &Pack{Manifest: m, Raw: raw, ID: id, Sig: sig, Blobs: blobs}, nil
}

// Filenames inside a runpack directory.
const (
	manifestFile  = "manifest.json"
	signatureFile = "signature.json"
	blobsDir      = "blobs"
)

// WriteDir materializes the pack under dir:
//
//	dir/manifest.json    canonical manifest bytes (the signature scope)
//	dir/signature.json   canonical Signature (id, algo, sig, pubkey)
//	dir/blobs/…          artifact blobs in a cas.DiskStore layout
//
// Blob storage is content-addressed, so identical artifacts across packs
// sharing a store directory deduplicate, and a blob's path is its digest —
// the manifest is the only name table.
func (p *Pack) WriteDir(dir string) error {
	store, err := cas.NewDiskStore(filepath.Join(dir, blobsDir))
	if err != nil {
		return err
	}
	for name, body := range p.Blobs {
		if _, err := store.Put(body); err != nil {
			return fmt.Errorf("runpack: storing blob %q: %w", name, err)
		}
	}
	sigRaw, err := jcs.Marshal(p.Sig)
	if err != nil {
		return fmt.Errorf("runpack: encoding signature: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestFile), p.Raw, 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, signatureFile), append(sigRaw, '\n'), 0o644)
}

// ReadDir loads a pack written by WriteDir. Blobs are looked up by the
// digests the manifest claims; a missing blob is not an error here — Verify
// reports it as ErrArtifactMissing, keeping read and check separable.
func ReadDir(dir string) (*Pack, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("runpack: reading manifest: %w", err)
	}
	sigRaw, err := os.ReadFile(filepath.Join(dir, signatureFile))
	if err != nil {
		return nil, fmt.Errorf("runpack: reading signature: %w", err)
	}
	var sig Signature
	if err := json.Unmarshal(sigRaw, &sig); err != nil {
		return nil, fmt.Errorf("runpack: parsing signature: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("runpack: parsing manifest: %w", err)
	}
	p := &Pack{Manifest: m, Raw: raw, ID: sig.ID, Sig: sig, Blobs: map[string][]byte{}}
	store, err := cas.NewDiskStore(filepath.Join(dir, blobsDir))
	if err != nil {
		return nil, err
	}
	for _, ref := range m.Artifacts {
		k := cas.Key(ref.SHA256)
		if !k.Valid() {
			continue // Verify reports the malformed digest
		}
		body, ok, err := store.Get(k)
		if err != nil {
			return nil, fmt.Errorf("runpack: reading blob %q: %w", ref.Name, err)
		}
		if ok {
			p.Blobs[ref.Name] = body
		}
	}
	return p, nil
}

// bundle is the wire form of a pack: one canonical JSON document.
type bundle struct {
	Format   string            `json:"format"`
	Manifest string            `json:"manifest_b64"`
	Sig      Signature         `json:"signature"`
	Blobs    map[string]string `json:"artifacts_b64,omitempty"`
}

// EncodeBundle renders the pack as a single self-contained JSON document —
// the representation GET /experiments/{id}/runpack serves. The manifest
// travels base64-encoded so its exact bytes (the signature scope) survive
// any JSON re-encoding of the envelope.
func (p *Pack) EncodeBundle() ([]byte, error) {
	b := bundle{Format: BundleFormat,
		Manifest: base64.StdEncoding.EncodeToString(p.Raw), Sig: p.Sig}
	if len(p.Blobs) > 0 {
		b.Blobs = make(map[string]string, len(p.Blobs))
		for n, body := range p.Blobs {
			b.Blobs[n] = base64.StdEncoding.EncodeToString(body)
		}
	}
	return jcs.Marshal(b)
}

// DecodeBundle parses a bundle back into a Pack (the inverse of
// EncodeBundle). The result still needs Verify — decoding checks shape,
// not integrity.
func DecodeBundle(data []byte) (*Pack, error) {
	var b bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("runpack: parsing bundle: %w", err)
	}
	if b.Format != BundleFormat {
		return nil, fmt.Errorf("runpack: unsupported bundle format %q", b.Format)
	}
	raw, err := base64.StdEncoding.DecodeString(b.Manifest)
	if err != nil {
		return nil, fmt.Errorf("runpack: bundle manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("runpack: bundle manifest: %w", err)
	}
	p := &Pack{Manifest: m, Raw: raw, ID: b.Sig.ID, Sig: b.Sig, Blobs: map[string][]byte{}}
	for n, enc := range b.Blobs {
		body, err := base64.StdEncoding.DecodeString(enc)
		if err != nil {
			return nil, fmt.Errorf("runpack: bundle artifact %q: %w", n, err)
		}
		p.Blobs[n] = body
	}
	return p, nil
}

// Artifacts returns the blobs as the string map an exp.Result carries.
func (p *Pack) Artifacts() map[string]string {
	out := make(map[string]string, len(p.Blobs))
	for n, b := range p.Blobs {
		out[n] = string(b)
	}
	return out
}
