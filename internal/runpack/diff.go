package runpack

import (
	"fmt"
	"sort"
	"strings"
)

// DiffReport is a field-level comparison of two packs in the provenance-
// differencing sense of Missier et al.: it names which manifest field,
// which artifact (and the first differing byte offset), and which metric
// drifted — and it separates material drift (the result itself changed)
// from provenance-only drift (same bytes, different environment facts).
type DiffReport struct {
	// Lines are the human-readable drift records, deterministically ordered.
	Lines []string
	// Material reports drift in the sealed result: fingerprint, seeds,
	// params, artifacts, or metrics. This is what a regress gate fails on.
	Material bool
	// Provenance reports drift confined to provenance fields (registry,
	// engine, store, cached) — legitimate across cache states and upgrades.
	Provenance bool
}

// Equal reports no drift at all.
func (d *DiffReport) Equal() bool { return !d.Material && !d.Provenance }

// Text renders the report ("packs are identical" when empty).
func (d *DiffReport) Text() string {
	if d.Equal() {
		return "packs are identical\n"
	}
	return strings.Join(d.Lines, "\n") + "\n"
}

func (d *DiffReport) material(format string, args ...any) {
	d.Lines = append(d.Lines, fmt.Sprintf(format, args...))
	d.Material = true
}

func (d *DiffReport) provenance(format string, args ...any) {
	d.Lines = append(d.Lines, fmt.Sprintf(format, args...))
	d.Provenance = true
}

// Diff compares pack a (the reference) against pack b (the candidate).
func Diff(a, b *Pack) *DiffReport {
	d := &DiffReport{}
	ma, mb := a.Manifest, b.Manifest
	if ma.Experiment != mb.Experiment {
		d.material("experiment: %q != %q", ma.Experiment, mb.Experiment)
	}
	if ma.Fingerprint != mb.Fingerprint {
		d.material("fingerprint: %s != %s (the Spec itself changed)", short(ma.Fingerprint), short(mb.Fingerprint))
	}
	if ma.RootSeed != mb.RootSeed {
		d.material("root_seed: %d != %d", ma.RootSeed, mb.RootSeed)
	}
	if ma.Seed != mb.Seed {
		d.material("seed: %d != %d", ma.Seed, mb.Seed)
	}
	diffArtifacts(d, a, b)
	diffMetrics(d, ma.Metrics, mb.Metrics)
	pa, pb := ma.Provenance, mb.Provenance
	if pa.Registry != pb.Registry {
		d.provenance("provenance.registry: %q != %q", pa.Registry, pb.Registry)
	}
	if pa.Experiments != pb.Experiments {
		d.provenance("provenance.experiments: %d != %d", pa.Experiments, pb.Experiments)
	}
	if pa.Engine != pb.Engine {
		d.provenance("provenance.engine: %q != %q", pa.Engine, pb.Engine)
	}
	if pa.Store != pb.Store {
		d.provenance("provenance.store: %q != %q", pa.Store, pb.Store)
	}
	if pa.Cached != pb.Cached {
		d.provenance("provenance.cached: %v != %v", pa.Cached, pb.Cached)
	}
	return d
}

func diffArtifacts(d *DiffReport, a, b *Pack) {
	refs := func(m Manifest) map[string]ArtifactRef {
		out := make(map[string]ArtifactRef, len(m.Artifacts))
		for _, r := range m.Artifacts {
			out[r.Name] = r
		}
		return out
	}
	ra, rb := refs(a.Manifest), refs(b.Manifest)
	names := map[string]bool{}
	for n := range ra {
		names[n] = true
	}
	for n := range rb {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		fa, inA := ra[n]
		fb, inB := rb[n]
		switch {
		case !inB:
			d.material("artifact %q: only in reference", n)
		case !inA:
			d.material("artifact %q: only in candidate", n)
		case fa.SHA256 != fb.SHA256:
			line := fmt.Sprintf("artifact %q: sha256 %s != %s (%d vs %d bytes)",
				n, short(fa.SHA256), short(fb.SHA256), fa.Bytes, fb.Bytes)
			ba, okA := a.Blobs[n]
			bb, okB := b.Blobs[n]
			if okA && okB {
				if off := firstDiffOffset(ba, bb); off >= 0 {
					line += fmt.Sprintf(", first differing byte at offset %d", off)
				}
			}
			d.material(line)
		case fa.Bytes != fb.Bytes:
			d.material("artifact %q: size %d != %d with equal digest (malformed manifest)", n, fa.Bytes, fb.Bytes)
		}
	}
}

func diffMetrics(d *DiffReport, a, b map[string]float64) {
	names := map[string]bool{}
	for n := range a {
		names[n] = true
	}
	for n := range b {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		va, inA := a[n]
		vb, inB := b[n]
		switch {
		case !inB:
			d.material("metric %q: only in reference (%g)", n, va)
		case !inA:
			d.material("metric %q: only in candidate (%g)", n, vb)
		case va != vb:
			d.material("metric %q: %g != %g (drift %+g)", n, va, vb, vb-va)
		}
	}
}
