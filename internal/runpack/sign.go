package runpack

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Algo names a signature algorithm carried in a runpack signature.
type Algo string

const (
	// AlgoHMAC is HMAC-SHA256 over the canonical manifest bytes: symmetric,
	// verifiable only by holders of the shared secret. The right choice for
	// CI gates where packer and verifier are the same trust domain.
	AlgoHMAC Algo = "hmac-sha256"
	// AlgoEd25519 is an ed25519 signature over the canonical manifest
	// bytes: the verifier needs only the public key, which travels inside
	// the signature. The choice for served runpacks — a client can check
	// what the server computed without sharing any secret with it.
	AlgoEd25519 Algo = "ed25519"
)

// Key is a signing key: an HMAC secret or an ed25519 seed. The zero value
// is invalid; construct with NewHMACKey / NewEd25519Key / DevKey.
type Key struct {
	algo   Algo
	secret []byte // HMAC secret, or the 32-byte ed25519 private seed
}

// NewHMACKey returns an HMAC-SHA256 signing key over secret.
func NewHMACKey(secret []byte) Key {
	return Key{algo: AlgoHMAC, secret: append([]byte(nil), secret...)}
}

// NewEd25519Key derives an ed25519 signing key from seed material of any
// length: the material is hashed to the 32-byte private seed, so a caller
// can feed a passphrase, a random blob, or a deterministic stream.
func NewEd25519Key(material []byte) Key {
	sum := sha256.Sum256(append([]byte("runpack/ed25519-seed/v1|"), material...))
	return Key{algo: AlgoEd25519, secret: sum[:]}
}

// DevKey is the documented development/CI key: an HMAC key over a fixed
// secret. It provides integrity (a flipped byte is detected) but no
// authenticity against an adversary who reads this source — production
// deployments supply their own key material.
func DevKey() Key { return NewHMACKey([]byte("runpack-dev-key/v1")) }

// Zero reports whether the key is unset.
func (k Key) Zero() bool { return k.algo == "" }

// Algo returns the key's algorithm.
func (k Key) Algo() Algo { return k.algo }

// Public returns the hex-encoded ed25519 public key ("" for HMAC keys).
func (k Key) Public() string {
	if k.algo != AlgoEd25519 {
		return ""
	}
	priv := ed25519.NewKeyFromSeed(k.secret)
	return hex.EncodeToString(priv.Public().(ed25519.PublicKey))
}

// Signature is the detached signature stored beside (and in bundles,
// inside) a runpack: the manifest digest it covers, the algorithm, the
// signature bytes, and for ed25519 the public key needed to verify.
type Signature struct {
	// ID is the runpack ID: hex SHA-256 of the canonical manifest bytes.
	ID string `json:"id"`
	// Algo is the signing algorithm.
	Algo Algo `json:"algo"`
	// Sig is the hex-encoded signature over the canonical manifest bytes.
	Sig string `json:"sig"`
	// PubKey is the hex ed25519 public key (empty for HMAC).
	PubKey string `json:"pubkey,omitempty"`
}

// Sign produces the signature over the canonical manifest bytes raw, whose
// hex SHA-256 is id.
func (k Key) Sign(id string, raw []byte) (Signature, error) {
	switch k.algo {
	case AlgoHMAC:
		mac := hmac.New(sha256.New, k.secret)
		mac.Write(raw)
		return Signature{ID: id, Algo: AlgoHMAC, Sig: hex.EncodeToString(mac.Sum(nil))}, nil
	case AlgoEd25519:
		priv := ed25519.NewKeyFromSeed(k.secret)
		sig := ed25519.Sign(priv, raw)
		return Signature{ID: id, Algo: AlgoEd25519, Sig: hex.EncodeToString(sig),
			PubKey: hex.EncodeToString(priv.Public().(ed25519.PublicKey))}, nil
	default:
		return Signature{}, fmt.Errorf("runpack: signing with unset key")
	}
}

// VerifyWith checks the signature over raw using the full key (the HMAC
// secret, or the ed25519 private key — which also pins the expected public
// key, rejecting a signature re-signed under a different keypair).
func (s Signature) VerifyWith(k Key, raw []byte) error {
	if s.Algo != k.algo {
		return fmt.Errorf("%w: signature algo %q, key algo %q", ErrSignature, s.Algo, k.algo)
	}
	switch k.algo {
	case AlgoHMAC:
		mac := hmac.New(sha256.New, k.secret)
		mac.Write(raw)
		want := mac.Sum(nil)
		got, err := hex.DecodeString(s.Sig)
		if err != nil || !hmac.Equal(want, got) {
			return fmt.Errorf("%w: hmac-sha256 mismatch", ErrSignature)
		}
		return nil
	case AlgoEd25519:
		if s.PubKey != k.Public() {
			return fmt.Errorf("%w: signature public key %s is not the verifying key's", ErrSignature, short(s.PubKey))
		}
		return s.VerifyPublic(k.Public(), raw)
	default:
		return fmt.Errorf("%w: verifying with unset key", ErrSignature)
	}
}

// VerifyPublic checks an ed25519 signature over raw against a trusted hex
// public key — the offline path: a client that fetched a bundle from smsd
// needs only the server's published key, no shared secret.
func (s Signature) VerifyPublic(pubHex string, raw []byte) error {
	if s.Algo != AlgoEd25519 {
		return fmt.Errorf("%w: public-key verification needs ed25519, signature is %q", ErrSignature, s.Algo)
	}
	if s.PubKey != "" && s.PubKey != pubHex {
		return fmt.Errorf("%w: bundle public key %s differs from trusted key %s", ErrSignature, short(s.PubKey), short(pubHex))
	}
	pub, err := hex.DecodeString(pubHex)
	if err != nil || len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: malformed public key %q", ErrSignature, pubHex)
	}
	sig, err := hex.DecodeString(s.Sig)
	if err != nil {
		return fmt.Errorf("%w: malformed signature hex", ErrSignature)
	}
	if !ed25519.Verify(ed25519.PublicKey(pub), raw, sig) {
		return fmt.Errorf("%w: ed25519 verification failed", ErrSignature)
	}
	return nil
}

func short(hexStr string) string {
	if len(hexStr) > 12 {
		return hexStr[:12]
	}
	return hexStr
}
