package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/cas"
)

// Registry holds the executable experiments by name. It is the single seam
// the CLIs (-list / -run), the report builder, and the sweep drivers share:
// registering here is what makes a workload listable, runnable, and
// memoizable under the uniform contract.
type Registry struct {
	byName map[string]Experiment
	// name is the assembly name recorded in runpack provenance (see
	// SetName / Name in seal.go).
	name string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]Experiment{}}
}

// Register adds an experiment. The name must be non-empty and unique, the
// body non-nil, and the spec fingerprintable (JSON-serializable params) —
// a spec that cannot be fingerprinted cannot be cached or reproduced, so it
// is rejected at registration time, not at run time.
func (r *Registry) Register(e Experiment) error {
	if e.Spec.Name == "" {
		return fmt.Errorf("exp: experiment with empty name")
	}
	if e.Run == nil {
		return fmt.Errorf("exp: experiment %q has no body", e.Spec.Name)
	}
	if _, dup := r.byName[e.Spec.Name]; dup {
		return fmt.Errorf("exp: duplicate experiment %q", e.Spec.Name)
	}
	if _, err := e.Spec.Fingerprint(); err != nil {
		return err
	}
	r.byName[e.Spec.Name] = e
	return nil
}

// MustRegister is Register panicking on error — for assembly code whose
// registrations are validated by the completeness tests.
func (r *Registry) MustRegister(e Experiment) {
	if err := r.Register(e); err != nil {
		panic(err)
	}
}

// Get returns the named experiment.
func (r *Registry) Get(name string) (Experiment, bool) {
	e, ok := r.byName[name]
	return e, ok
}

// Names returns every registered name in sorted order — the canonical
// listing and sweep order.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Experiments returns the registered experiments in Names() order.
func (r *Registry) Experiments() []Experiment {
	names := r.Names()
	out := make([]Experiment, len(names))
	for i, n := range names {
		out[i] = r.byName[n]
	}
	return out
}

// Len returns the number of registered experiments.
func (r *Registry) Len() int { return len(r.byName) }

// memoKey derives the whole-experiment memo key: the spec fingerprint plus
// the derived seed (the only Env ingredient that may change a conforming
// experiment's output — clock, workers and telemetry must not).
func memoKey(fp string, seed int64) string {
	return fmt.Sprintf("%s:seed=%d", fp, seed)
}

// Run executes the named experiment under env, wrapped in an "exp.run"
// span. With env.Store set, the run is memoized: the Result is stored
// content-addressed under StepKey("exp", name, fingerprint‖seed), and a
// warm invocation decodes the stored Result without executing the body
// (Provenance.Cached reports which path was taken, and the exp.hits /
// exp.misses counters accumulate on env.Metrics).
func (r *Registry) Run(ctx context.Context, env *Env, name string) (*Result, error) {
	e, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (see -list)", name)
	}
	fp, err := e.Spec.Fingerprint()
	if err != nil {
		return nil, err
	}
	seed := env.SeedFor(name)

	sp := env.StartSpan("exp.run", name)
	res, err := r.run(ctx, env, e, fp, seed)
	sp.End(err)
	return res, err
}

func (r *Registry) run(ctx context.Context, env *Env, e Experiment, fp string, seed int64) (*Result, error) {
	name := e.Spec.Name
	var key cas.Key
	if env.Store != nil {
		key = cas.StepKey("exp", name, memoKey(fp, seed), nil)
		if res, ok, err := lookup(env, key, name); err != nil {
			return nil, err
		} else if ok {
			return res, nil
		}
	}

	res, err := e.Run(ctx, env, e.Spec)
	if err != nil {
		return nil, fmt.Errorf("exp: %s: %w", name, err)
	}
	if res == nil {
		res = &Result{}
	}
	res.Provenance = Provenance{Experiment: name, Fingerprint: fp, Seed: seed}

	if env.Store != nil {
		data, err := json.Marshal(res)
		if err != nil {
			return nil, fmt.Errorf("exp: %s: encoding result: %w", name, err)
		}
		sp := env.StartSpan("exp.put", name)
		artifact, err := env.Store.Put(data)
		if err == nil {
			err = env.Store.Link(key, artifact)
		}
		sp.End(err)
		if err != nil {
			return nil, err
		}
		if env.Metrics != nil {
			env.Metrics.Inc("exp.misses", 1)
			env.Metrics.Inc("exp.bytes", int64(len(data)))
		}
	}
	return res, nil
}

// lookup serves a memoized Result from the store, when present.
func lookup(env *Env, key cas.Key, name string) (*Result, bool, error) {
	target, ok, err := env.Store.Resolve(key)
	if err != nil || !ok {
		return nil, false, err
	}
	sp := env.StartSpan("exp.get", name)
	data, found, err := env.Store.Get(target)
	sp.End(err)
	if err != nil || !found {
		// A dangling link (artifact evicted) falls back to executing.
		return nil, false, err
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, false, fmt.Errorf("exp: %s: decoding cached result: %w", name, err)
	}
	res.Provenance.Cached = true
	if env.Metrics != nil {
		env.Metrics.Inc("exp.hits", 1)
	}
	return &res, true, nil
}

// RunAll executes every registered experiment in Names() order under one
// shared Env — the registry sweep. It stops at the first failure; with a
// warm env.Store the sweep executes zero bodies.
func (r *Registry) RunAll(ctx context.Context, env *Env) ([]*Result, error) {
	names := r.Names()
	out := make([]*Result, 0, len(names))
	for _, n := range names {
		res, err := r.Run(ctx, env, n)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}
