// Package exp is the unified experiment engine: one Env/Spec/Result
// contract shared by every executable workload in the repository — the
// Table 2 integration scenarios, the report build, the orchestrator sweeps,
// and the continuum what-ifs.
//
// Before this package each layer hand-wired its own clock, RNG seeding,
// telemetry, parallelism, and caching (or skipped them: scenarios seeded
// math/rand directly and emitted no spans). The surveyed reproducibility
// literature — Diercks et al. on declarative run contracts (arXiv:2211.06429)
// and the Reproducible Workflow case for environment capture
// (arXiv:2012.13427) — converges on the same precondition: a run is
// reproducible only when its environment is an explicit, injectable value
// and its configuration has a stable identity. Env is that environment,
// Spec is that identity, and Result carries the provenance linking the two.
//
// Determinism obligations (DESIGN.md §6): an experiment body must derive
// every random stream from the Env (Env.Rng / Env.SeedFor, further split
// with par.SplitSeed), must read time only through Env clocks, and must
// produce artifacts that are byte-identical for any par.Workers(n). Under
// those obligations the registry can memoize whole experiments on
// (Spec fingerprint, Env seed) through a content-addressed store: a warm
// run executes zero bodies and returns byte-identical artifacts.
package exp

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/cas"
	"repro/internal/clock"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// specVersion is folded into every Spec fingerprint; bump it when the
// fingerprint recipe itself changes.
const specVersion = "exp/spec/v1"

// Env is the execution environment injected into every experiment: the
// complete set of ambient capabilities a body may use. The zero value is a
// valid wall-clock environment with seed 0 and no telemetry or caching.
type Env struct {
	// Clock is the experiment time source (nil = clock.System). Inject a
	// *clock.Sim to make every timestamp — spans, journals, provenance — a
	// pure function of the run.
	Clock clock.Clock
	// Seed is the root randomness of the run. Experiments never consume it
	// directly: each derives its own independent stream with SeedFor/Rng,
	// so experiments sharing an Env cannot perturb each other.
	Seed int64
	// Metrics receives counters, series and spans (nil = no telemetry).
	Metrics *telemetry.Registry
	// Par configures the worker pool for parallel experiment bodies. By
	// the determinism obligations, worker count never changes results.
	Par []par.Option
	// Store, when non-nil, enables whole-experiment memoization in
	// Registry.Run and is available to bodies for step-level caching.
	Store cas.Store
}

// Clk returns the environment clock, defaulting to the system clock.
func (e *Env) Clk() clock.Clock { return clock.Or(e.Clock) }

// ParOpts returns the par options for experiment bodies (safe on nil Par).
func (e *Env) ParOpts() []par.Option { return e.Par }

// SeedFor derives the independent sub-seed for a named stream: FNV-1a over
// the name folded with the root seed through the SplitMix64 finalizer — the
// same construction as par.SplitSeed and clock.Sim.WorkDuration, so the
// whole randomness story of the repo stays one primitive. Distinct names
// yield independent streams; the same (root, name) pair always yields the
// same seed, regardless of call order or goroutine.
func (e *Env) SeedFor(name string) int64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	z := uint64(e.Seed) + (h+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Rng returns a fresh deterministic generator for the named stream. By
// convention an experiment uses its own Spec name (or "name/purpose" for
// several streams), so no two experiments ever share a stream.
func (e *Env) Rng(name string) *rng.Rand { return rng.New(e.SeedFor(name)) }

// IndexedSeed derives the seed of element i of the named stream:
// par.SplitSeed over the stream's root seed. It is the contract behind
// indexed generation (corpus entries, scengen configurations) — element i
// is a pure function of (Env.Seed, name, i), independent of every other
// element, so indexed families shard and memoize without ordering
// constraints.
func (e *Env) IndexedSeed(name string, i int) int64 {
	return par.SplitSeed(e.SeedFor(name), i)
}

// Span is a nil-safe handle for an in-flight telemetry span.
type Span struct{ a *telemetry.ActiveSpan }

// End finishes the span (no-op when telemetry is off).
func (s Span) End(err error) {
	if s.a != nil {
		s.a.End(err)
	}
}

// StartSpan begins a span on the environment's metrics registry and clock.
// It is safe to call with no Metrics configured.
func (e *Env) StartSpan(kind, name string) Span {
	if e.Metrics == nil {
		return Span{}
	}
	return Span{a: e.Metrics.StartSpan(e.Clk(), kind, name)}
}

// Spec is the declarative identity of an experiment: a registry-unique name
// plus the JSON-serializable parameters that determine its behaviour.
// Everything that can change an experiment's output — sizes, probabilities,
// retry budgets, renderer versions — belongs in Params; everything ambient
// (clock, seed, workers, store) belongs in Env.
type Spec struct {
	Name   string         `json:"name"`
	Params map[string]any `json:"params,omitempty"`
}

// Fingerprint returns the stable SHA-256 hex identity of the spec: a hash
// over the spec version, the name, and the canonical JSON encoding of the
// parameters (encoding/json sorts map keys, so insertion order never leaks
// into the fingerprint). It is the memo-key root for every cached artifact
// derived from this spec.
func (s Spec) Fingerprint() (string, error) {
	params, err := json.Marshal(s.Params)
	if err != nil {
		return "", fmt.Errorf("exp: fingerprinting %q: %w", s.Name, err)
	}
	h := sha256.New()
	field := func(b []byte) {
		fmt.Fprintf(h, "%d:", len(b))
		h.Write(b)
	}
	field([]byte(specVersion))
	field([]byte(s.Name))
	field(params)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Provenance records how a Result was produced — enough to reproduce it.
type Provenance struct {
	// Experiment is the Spec name.
	Experiment string `json:"experiment"`
	// Fingerprint is the Spec fingerprint at run time.
	Fingerprint string `json:"fingerprint"`
	// Seed is the derived per-experiment seed (Env.SeedFor(name)).
	Seed int64 `json:"seed"`
	// Cached reports that the result was served from the Env store without
	// executing the body. Never part of the stored artifact.
	Cached bool `json:"cached,omitempty"`
}

// Result is what an experiment produces: named textual artifacts, scalar
// metrics, and the provenance of the run. Artifacts must be byte-identical
// for any worker count; the whole Result must round-trip through JSON (the
// registry stores it content-addressed).
type Result struct {
	Artifacts  map[string]string  `json:"artifacts,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	Provenance Provenance         `json:"provenance"`
}

// RunFunc is an experiment body. It receives the shared Env and its own
// Spec and returns the Result; the registry fills in provenance.
type RunFunc func(ctx context.Context, env *Env, spec Spec) (*Result, error)

// Experiment is one registered workload: a Spec, optional Table 2
// coordinates (App×Tool, empty for engine-level experiments like the
// report build), a description, and the body.
type Experiment struct {
	Spec Spec
	// App and Tool tie a scenario experiment to its Table 2 checkmark.
	App, Tool string
	Desc      string
	Run       RunFunc
}
