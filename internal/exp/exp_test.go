package exp

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/cas"
	"repro/internal/clock"
	"repro/internal/telemetry"
)

func TestSpecFingerprintStable(t *testing.T) {
	a := Spec{Name: "x", Params: map[string]any{"n": 10, "p": 0.5}}
	b := Spec{Name: "x", Params: map[string]any{"p": 0.5, "n": 10}}
	fa, err := a.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Error("param insertion order leaked into the fingerprint")
	}
	c := Spec{Name: "x", Params: map[string]any{"n": 11, "p": 0.5}}
	fc, err := c.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fc == fa {
		t.Error("param change did not change the fingerprint")
	}
	d := Spec{Name: "y", Params: a.Params}
	fd, err := d.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fd == fa {
		t.Error("name change did not change the fingerprint")
	}
}

func TestSpecFingerprintRejectsUnserializable(t *testing.T) {
	s := Spec{Name: "bad", Params: map[string]any{"fn": func() {}}}
	if _, err := s.Fingerprint(); err == nil {
		t.Error("unserializable params fingerprinted")
	}
}

// The Env-isolation invariant: two experiments sharing one Env derive
// independent rng streams — neither the other's draws nor the order the
// experiments run in can change what either observes.
func TestEnvIsolation(t *testing.T) {
	env := &Env{Seed: 42}
	drawsOf := func(name string, before int) []float64 {
		// Perturb: consume `before` draws from the *other* stream first.
		other := env.Rng("other-experiment")
		for i := 0; i < before; i++ {
			other.Float64()
		}
		r := env.Rng(name)
		out := make([]float64, 8)
		for i := range out {
			out[i] = r.Float64()
		}
		return out
	}
	a := drawsOf("exp-a", 0)
	b := drawsOf("exp-a", 17) // other experiment drew first — must not matter
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream exp-a perturbed by another experiment's draws at %d", i)
		}
	}
	o := drawsOf("exp-b", 0)
	same := true
	for i := range a {
		if a[i] != o[i] {
			same = false
		}
	}
	if same {
		t.Error("distinct experiment names produced identical streams")
	}
	if env.SeedFor("exp-a") == env.SeedFor("exp-b") {
		t.Error("distinct names derived the same seed")
	}
	if (&Env{Seed: 1}).SeedFor("exp-a") == (&Env{Seed: 2}).SeedFor("exp-a") {
		t.Error("root seed does not reach derived seeds")
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	r := NewRegistry()
	ok := Experiment{Spec: Spec{Name: "a"}, Run: func(context.Context, *Env, Spec) (*Result, error) { return &Result{}, nil }}
	if err := r.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(ok); err == nil {
		t.Error("duplicate accepted")
	}
	if err := r.Register(Experiment{Spec: Spec{Name: ""}, Run: ok.Run}); err == nil {
		t.Error("empty name accepted")
	}
	if err := r.Register(Experiment{Spec: Spec{Name: "b"}}); err == nil {
		t.Error("nil body accepted")
	}
	if err := r.Register(Experiment{Spec: Spec{Name: "c", Params: map[string]any{"f": func() {}}}, Run: ok.Run}); err == nil {
		t.Error("unfingerprintable spec accepted")
	}
	if _, err := r.Run(context.Background(), &Env{}, "nope"); err == nil {
		t.Error("unknown experiment ran")
	}
}

// Whole-experiment memoization: a warm registry sweep executes zero bodies
// and returns byte-identical artifacts, with provenance marking the cache
// path and exp.hits/exp.misses accounting for every experiment.
func TestRegistryWarmSweepExecutesZeroBodies(t *testing.T) {
	r := NewRegistry()
	executed := 0
	for _, name := range []string{"alpha", "beta", "gamma"} {
		name := name
		r.MustRegister(Experiment{
			Spec: Spec{Name: name, Params: map[string]any{"k": name}},
			Run: func(ctx context.Context, env *Env, spec Spec) (*Result, error) {
				executed++
				v := env.Rng(spec.Name).Float64()
				return &Result{
					Artifacts: map[string]string{"out": name + " artifact"},
					Metrics:   map[string]float64{"draw": v},
				}, nil
			},
		})
	}
	env := &Env{
		Seed:    7,
		Clock:   clock.NewSim(1),
		Metrics: telemetry.NewWithClock(clock.NewSim(1)),
		Store:   cas.NewMemStore(),
	}
	cold, err := r.RunAll(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	if executed != 3 {
		t.Fatalf("cold sweep executed %d bodies, want 3", executed)
	}
	warm, err := r.RunAll(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	if executed != 3 {
		t.Fatalf("warm sweep executed %d extra bodies", executed-3)
	}
	for i := range cold {
		if cold[i].Provenance.Cached {
			t.Errorf("cold result %d marked cached", i)
		}
		if !warm[i].Provenance.Cached {
			t.Errorf("warm result %d not marked cached", i)
		}
		if cold[i].Artifacts["out"] != warm[i].Artifacts["out"] {
			t.Errorf("artifact %d diverged across cold/warm", i)
		}
		if cold[i].Metrics["draw"] != warm[i].Metrics["draw"] {
			t.Errorf("metric %d diverged across cold/warm", i)
		}
		if cold[i].Provenance.Fingerprint != warm[i].Provenance.Fingerprint {
			t.Errorf("fingerprint %d diverged", i)
		}
	}
	if hits := env.Metrics.Counter("exp.hits"); hits != 3 {
		t.Errorf("exp.hits = %d, want 3", hits)
	}
	if misses := env.Metrics.Counter("exp.misses"); misses != 3 {
		t.Errorf("exp.misses = %d, want 3", misses)
	}
}

// A different root seed must miss the cache: the derived seed is part of
// the memo key, so cached results can never leak across seeds.
func TestRegistryMemoKeyCoversSeed(t *testing.T) {
	r := NewRegistry()
	executed := 0
	r.MustRegister(Experiment{
		Spec: Spec{Name: "seeded"},
		Run: func(ctx context.Context, env *Env, spec Spec) (*Result, error) {
			executed++
			return &Result{Artifacts: map[string]string{"v": "x"}}, nil
		},
	})
	store := cas.NewMemStore()
	if _, err := r.Run(context.Background(), &Env{Seed: 1, Store: store}, "seeded"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), &Env{Seed: 2, Store: store}, "seeded"); err != nil {
		t.Fatal(err)
	}
	if executed != 2 {
		t.Fatalf("executed %d bodies across two seeds, want 2 (no cross-seed hits)", executed)
	}
	if _, err := r.Run(context.Background(), &Env{Seed: 1, Store: store}, "seeded"); err != nil {
		t.Fatal(err)
	}
	if executed != 2 {
		t.Fatal("same-seed rerun executed the body instead of hitting the cache")
	}
}

func TestRegistryRunError(t *testing.T) {
	r := NewRegistry()
	boom := errors.New("boom")
	r.MustRegister(Experiment{
		Spec: Spec{Name: "fails"},
		Run:  func(context.Context, *Env, Spec) (*Result, error) { return nil, boom },
	})
	_, err := r.Run(context.Background(), &Env{}, "fails")
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "fails") {
		t.Errorf("error does not name the experiment: %v", err)
	}
}

// Spans: Registry.Run emits one exp.run span per invocation on the Env
// metrics, stamped by the Env clock.
func TestRunEmitsSpan(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(Experiment{
		Spec: Spec{Name: "spanned"},
		Run:  func(context.Context, *Env, Spec) (*Result, error) { return &Result{}, nil },
	})
	sim := clock.NewSim(1)
	env := &Env{Clock: sim, Metrics: telemetry.NewWithClock(sim)}
	if _, err := r.Run(context.Background(), env, "spanned"); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, sp := range env.Metrics.Spans() {
		if sp.Kind == "exp.run" && sp.Name == "spanned" {
			found = true
		}
	}
	if !found {
		t.Error("no exp.run span recorded")
	}
	if !strings.Contains(env.Metrics.TraceText(), "exp.run") {
		t.Error("TraceText does not show the experiment span")
	}
}

func TestNamesSortedAndGet(t *testing.T) {
	r := NewRegistry()
	run := func(context.Context, *Env, Spec) (*Result, error) { return &Result{}, nil }
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.MustRegister(Experiment{Spec: Spec{Name: n}, Run: run})
	}
	names := r.Names()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	if _, ok := r.Get("mid"); !ok {
		t.Error("Get(mid) missed")
	}
	if got := r.Len(); got != 3 {
		t.Errorf("Len() = %d", got)
	}
	exps := r.Experiments()
	if len(exps) != 3 || exps[0].Spec.Name != "alpha" {
		t.Errorf("Experiments() order wrong: %v", exps)
	}
}
