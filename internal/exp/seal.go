package exp

// Seal-on-run: the bridge from the experiment engine to internal/runpack.
// Every Result the registry produces can be sealed into a verifiable,
// replayable runpack — the manifest carries the Spec identity, the derived
// seed, the artifact digests, the metrics, and the provenance of this
// registry/engine, and the signature makes the whole receipt
// tamper-evident. DESIGN.md §8 documents the schema and semantics.

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/cas"
	"repro/internal/jcs"
	"repro/internal/runpack"
)

// EngineVersion is recorded in every runpack's provenance; bump it when the
// engine's execution semantics change in a result-affecting way.
const EngineVersion = "sms-exp/1"

// SetName names the registry assembly for runpack provenance (default
// "exp"). internal/experiments sets its canonical name at assembly time.
func (r *Registry) SetName(name string) { r.name = name }

// Name returns the registry's provenance name.
func (r *Registry) Name() string {
	if r.name == "" {
		return "exp"
	}
	return r.name
}

// storeKind classifies the Env cache backing for provenance.
func storeKind(s cas.Store) string {
	switch s.(type) {
	case nil:
		return "none"
	case *cas.MemStore:
		return "mem"
	case *cas.DiskStore:
		return "disk"
	default:
		return "other"
	}
}

// Seal packs a Result produced by this registry into a signed runpack. The
// manifest's material fields (fingerprint, seeds, artifact digests,
// metrics) are a pure function of the run; the provenance fields (registry,
// engine, store kind, cache state) may legitimately differ between a cold
// and a warm run of the same Spec — runpack.Diff keeps the two classes
// apart, and the regress gate fails only on material drift.
func (r *Registry) Seal(res *Result, env *Env, key runpack.Key) (*runpack.Pack, error) {
	name := res.Provenance.Experiment
	e, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("exp: sealing result of unregistered experiment %q", name)
	}
	m := runpack.Manifest{
		Experiment:  name,
		Fingerprint: res.Provenance.Fingerprint,
		Params:      e.Spec.Params,
		RootSeed:    env.Seed,
		Seed:        res.Provenance.Seed,
		Metrics:     res.Metrics,
		Provenance: runpack.Provenance{
			Registry:    r.Name(),
			Experiments: r.Len(),
			Engine:      EngineVersion,
			Store:       storeKind(env.Store),
			Cached:      res.Provenance.Cached,
		},
	}
	return runpack.Build(m, res.Artifacts, key)
}

// RunPacked executes the named experiment and seals its Result in one step
// — the seal-on-run path the CLIs' -runpack flag and the golden regress
// gate use.
func (r *Registry) RunPacked(ctx context.Context, env *Env, name string, key runpack.Key) (*Result, *runpack.Pack, error) {
	res, err := r.Run(ctx, env, name)
	if err != nil {
		return nil, nil, err
	}
	pack, err := r.Seal(res, env, key)
	if err != nil {
		return nil, nil, err
	}
	return res, pack, nil
}

// Validate sweeps every registered experiment's declarative identity
// without executing any body: the spec must fingerprint, its params must
// canonicalize under jcs, and the params must survive a JSON round-trip
// with the fingerprint intact — the property that makes a runpack manifest
// replayable (a param that decodes to different bytes than it encoded, such
// as an integer beyond float64's exact range, would silently re-execute a
// different Spec). Registration already rejects unfingerprintable specs;
// Validate is the deeper sweep the runpack path depends on.
func (r *Registry) Validate() error {
	for _, e := range r.Experiments() {
		fp, err := e.Spec.Fingerprint()
		if err != nil {
			return err
		}
		params, err := json.Marshal(e.Spec.Params)
		if err != nil {
			return fmt.Errorf("exp: validate %q: params: %w", e.Spec.Name, err)
		}
		canon, err := jcs.Canonicalize(params)
		if err != nil {
			return fmt.Errorf("exp: validate %q: params do not canonicalize: %w", e.Spec.Name, err)
		}
		if !jcs.IsCanonical(canon) {
			return fmt.Errorf("exp: validate %q: jcs canonical form unstable", e.Spec.Name)
		}
		// Round-trip: decode the encoded params and re-fingerprint. Drift
		// here means the spec a manifest carries would not re-execute as
		// the spec that ran.
		var back map[string]any
		if err := json.Unmarshal(params, &back); err != nil {
			return fmt.Errorf("exp: validate %q: params do not round-trip: %w", e.Spec.Name, err)
		}
		fp2, err := (Spec{Name: e.Spec.Name, Params: back}).Fingerprint()
		if err != nil {
			return fmt.Errorf("exp: validate %q: round-tripped params: %w", e.Spec.Name, err)
		}
		if fp2 != fp {
			return fmt.Errorf("exp: validate %q: params change identity across a JSON round-trip (fingerprint %s → %s)",
				e.Spec.Name, fp[:12], fp2[:12])
		}
	}
	return nil
}
