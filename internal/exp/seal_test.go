package exp

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cas"
	"repro/internal/clock"
	"repro/internal/runpack"
)

func sealTestRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	r.SetName("seal-test")
	r.MustRegister(Experiment{
		Spec: Spec{Name: "packed", Params: map[string]any{"n": 4}},
		Run: func(ctx context.Context, env *Env, spec Spec) (*Result, error) {
			rng := env.Rng(spec.Name)
			return &Result{
				Artifacts: map[string]string{
					"table": "a b\n1 2\n",
					"trace": strings.Repeat("tick\n", 20),
				},
				Metrics: map[string]float64{"draw": rng.Float64()},
			}, nil
		},
	})
	return r
}

func TestRunPackedSealsVerifiablePack(t *testing.T) {
	r := sealTestRegistry(t)
	key := runpack.DevKey()
	env := &Env{Seed: 9, Clock: clock.NewSim(9)}
	res, pack, err := r.RunPacked(context.Background(), env, "packed", key)
	if err != nil {
		t.Fatal(err)
	}
	if err := pack.Verify(runpack.VerifyOpts{Key: &key}); err != nil {
		t.Fatalf("sealed pack fails verify: %v", err)
	}
	m := pack.Manifest
	if m.Experiment != "packed" || m.Fingerprint != res.Provenance.Fingerprint {
		t.Fatalf("manifest identity wrong: %+v", m)
	}
	if m.RootSeed != 9 || m.Seed != res.Provenance.Seed {
		t.Fatalf("manifest seeds wrong: root=%d derived=%d", m.RootSeed, m.Seed)
	}
	if m.Provenance.Registry != "seal-test" || m.Provenance.Engine != EngineVersion {
		t.Fatalf("manifest provenance wrong: %+v", m.Provenance)
	}
	if m.Provenance.Store != "none" || m.Provenance.Cached {
		t.Fatalf("cold storeless run provenance wrong: %+v", m.Provenance)
	}
	if len(m.Artifacts) != 2 || m.Artifacts[0].Name != "table" || m.Artifacts[1].Name != "trace" {
		t.Fatalf("artifacts not sealed in sorted order: %+v", m.Artifacts)
	}
	if got := pack.Blobs["table"]; string(got) != res.Artifacts["table"] {
		t.Fatal("blob bytes differ from result artifact")
	}
}

// A warm (cached) re-run seals to the same material content — only the
// provenance records the cache path — so a regress gate comparing a cold
// golden against a warm candidate sees provenance-only drift.
func TestSealColdWarmMaterialIdentity(t *testing.T) {
	r := sealTestRegistry(t)
	key := runpack.DevKey()
	store := cas.NewMemStore()
	envCold := &Env{Seed: 3, Clock: clock.NewSim(3), Store: store}
	_, cold, err := r.RunPacked(context.Background(), envCold, "packed", key)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Manifest.Provenance.Store != "mem" {
		t.Fatalf("store kind = %q, want mem", cold.Manifest.Provenance.Store)
	}
	envWarm := &Env{Seed: 3, Clock: clock.NewSim(3), Store: store}
	_, warm, err := r.RunPacked(context.Background(), envWarm, "packed", key)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Manifest.Provenance.Cached {
		t.Fatal("warm run not marked cached in provenance")
	}
	d := runpack.Diff(cold, warm)
	if d.Material {
		t.Fatalf("cold vs warm drifted materially:\n%s", d.Text())
	}
	if !d.Provenance {
		t.Fatal("cold vs warm should differ in provenance.cached")
	}

	// Same seed, no store: byte-identical pack (same ID, same signature).
	envAgain := &Env{Seed: 9, Clock: clock.NewSim(9)}
	envAgain2 := &Env{Seed: 9, Clock: clock.NewSim(9)}
	_, a, err := r.RunPacked(context.Background(), envAgain, "packed", key)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := r.RunPacked(context.Background(), envAgain2, "packed", key)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID || string(a.Raw) != string(b.Raw) {
		t.Fatal("identical runs sealed to different packs")
	}
}

func TestSealRejectsForeignResult(t *testing.T) {
	r := sealTestRegistry(t)
	res := &Result{Provenance: Provenance{Experiment: "never-registered"}}
	if _, err := r.Seal(res, &Env{}, runpack.DevKey()); err == nil {
		t.Fatal("sealed a result from an unregistered experiment")
	}
}

func TestValidateAcceptsRoundTrippableSpecs(t *testing.T) {
	r := sealTestRegistry(t)
	r.MustRegister(Experiment{
		Spec: Spec{Name: "plain", Params: map[string]any{
			"f": 0.25, "s": "x", "list": []string{"a", "b"}, "flag": true,
		}},
		Run: func(context.Context, *Env, Spec) (*Result, error) { return &Result{}, nil },
	})
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate() on clean registry: %v", err)
	}
}

// An int64 param beyond float64's exact range fingerprints fine at
// registration but changes identity across a JSON round-trip — exactly the
// class of spec a runpack manifest could not faithfully replay. Validate
// must catch it.
func TestValidateCatchesNonRoundTrippableParams(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(Experiment{
		Spec: Spec{Name: "precise", Params: map[string]any{"big": int64(1)<<60 + 1}},
		Run:  func(context.Context, *Env, Spec) (*Result, error) { return &Result{}, nil },
	})
	err := r.Validate()
	if err == nil {
		t.Fatal("Validate() accepted params that change identity across a JSON round-trip")
	}
	if !strings.Contains(err.Error(), "precise") {
		t.Fatalf("error does not name the experiment: %v", err)
	}
}
