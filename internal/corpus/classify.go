package corpus

// The sharded classification engine. The corpus is cut into fixed-size
// shards of ShardSize entries; each shard's classification aggregate is an
// exact-integer summary (confusion counts, length sums) that merges
// associatively, so par.MapReduceScratch can fold shards in index order and
// produce bit-identical results at any worker count. Every shard aggregate
// is memoized in the content-addressed store under a key derived from the
// generator parameters, the compiled keyword scheme, and the shard's entry
// range — never from the total corpus size — which gives the two scaling
// properties the engine is for:
//
//   - warm re-run: every shard resolves from the store, zero bodies execute;
//   - growth: extending N leaves the keys of untouched full shards
//     identical, so only the previously-partial shard and the new tail
//     shards execute (partial invalidation, pinned by tests).

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/cas"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/par"
)

// ShardSize is the fixed number of entries per memo shard. It is a
// constant, like par's shard geometry: shard boundaries must depend only on
// entry indices, never on worker count or total size, or the memo keys
// would not survive re-sharding.
const ShardSize = 4096

// shardVersion is folded into every shard memo key; bump it when the
// aggregate schema or the generation recipe changes.
const shardVersion = "corpus/shard/v1"

// NumShards reports how many shards a corpus of n entries splits into.
func NumShards(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + ShardSize - 1) / ShardSize
}

// Aggregate is the exact-integer classification summary of a corpus slice.
// Merging is elementwise addition (min/max for the length bounds), so the
// merged value is independent of merge order and worker count by
// construction. It round-trips through JSON for content-addressed storage.
type Aggregate struct {
	// Total counts classified entries.
	Total int `json:"total"`
	// Confusion[t][p] counts entries whose true direction is t and
	// predicted direction is p (canonical indices).
	Confusion [5][5]int `json:"confusion"`
	// DescBytes sums description lengths.
	DescBytes int64 `json:"desc_bytes"`
	// MinLen / MaxLen bound description lengths.
	MinLen int `json:"min_len"`
	MaxLen int `json:"max_len"`
	// KeywordHits sums the distinct winning-direction keyword matches.
	KeywordHits int64 `json:"keyword_hits"`
}

// Merge folds b into a. The zero Aggregate is the identity.
func (a *Aggregate) Merge(b *Aggregate) {
	if b.Total == 0 {
		return
	}
	if a.Total == 0 {
		*a = *b
		return
	}
	a.Total += b.Total
	for t := 0; t < 5; t++ {
		for p := 0; p < 5; p++ {
			a.Confusion[t][p] += b.Confusion[t][p]
		}
	}
	a.DescBytes += b.DescBytes
	a.MinLen = min(a.MinLen, b.MinLen)
	a.MaxLen = max(a.MaxLen, b.MaxLen)
	a.KeywordHits += b.KeywordHits
}

// TrueCount returns how many entries were generated with direction d.
func (a *Aggregate) TrueCount(d int) int {
	n := 0
	for p := 0; p < 5; p++ {
		n += a.Confusion[d][p]
	}
	return n
}

// PredictedCount returns how many entries were classified into direction d.
func (a *Aggregate) PredictedCount(d int) int {
	n := 0
	for t := 0; t < 5; t++ {
		n += a.Confusion[t][d]
	}
	return n
}

// Correct returns the diagonal sum: entries whose prediction matched the
// generated direction.
func (a *Aggregate) Correct() int {
	n := 0
	for d := 0; d < 5; d++ {
		n += a.Confusion[d][d]
	}
	return n
}

// Accuracy is the fraction of correctly classified entries.
func (a *Aggregate) Accuracy() float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.Correct()) / float64(a.Total)
}

// RunStats reports how a sharded run was satisfied. It never affects the
// Aggregate — only telemetry and tests read it.
type RunStats struct {
	// ShardsExecuted counts shard bodies that actually classified entries.
	ShardsExecuted int
	// ShardsCached counts shards served from the content-addressed store.
	ShardsCached int
}

// shardScratch is the pooled working set of one in-flight shard body: the
// classifier scratch and the description buffer, reused across shards and
// across whole runs.
type shardScratch struct {
	cls core.ClassifyScratch
	buf []byte
}

var scratchPool = par.NewPool(func() *shardScratch { return &shardScratch{} })

// shardKey derives shard s's memo key. The fingerprint covers everything
// that determines the shard's aggregate — generation parameters, root seed,
// compiled keyword scheme, shard index and entry range — and nothing that
// doesn't (total corpus size, worker count).
func shardKey(g *Generator, s, lo, hi int) cas.Key {
	fp := fmt.Sprintf("%s|scheme=%s|%s|seed=%d|range=%d:%d",
		shardVersion, core.SchemeFingerprint(), g.spec.fingerprint(), g.seed, lo, hi)
	return cas.StepKey("corpus", fmt.Sprintf("shard-%d", s), fp, nil)
}

// classifyShard generates and classifies entries [lo, hi) into a fresh
// aggregate using the pooled scratch.
func classifyShard(g *Generator, cls *core.Classifier, lo, hi int, sc *shardScratch) Aggregate {
	agg := Aggregate{MinLen: math.MaxInt}
	for i := lo; i < hi; i++ {
		var dir int
		sc.buf, dir = g.Describe(i, sc.buf[:0])
		pred := cls.ClassifyBytes(sc.buf, &sc.cls)
		agg.Total++
		agg.Confusion[dir][pred]++
		agg.DescBytes += int64(len(sc.buf))
		agg.MinLen = min(agg.MinLen, len(sc.buf))
		agg.MaxLen = max(agg.MaxLen, len(sc.buf))
		agg.KeywordHits += int64(sc.cls.Matched())
	}
	return agg
}

// lookupShard serves a memoized shard aggregate from the store.
func lookupShard(store cas.Store, key cas.Key) (*Aggregate, bool, error) {
	target, ok, err := store.Resolve(key)
	if err != nil || !ok {
		return nil, false, err
	}
	data, found, err := store.Get(target)
	if err != nil || !found {
		// Dangling link (evicted artifact): fall back to executing.
		return nil, false, err
	}
	var agg Aggregate
	if err := json.Unmarshal(data, &agg); err != nil {
		return nil, false, fmt.Errorf("corpus: decoding cached shard: %w", err)
	}
	return &agg, true, nil
}

// storeShard memoizes one executed shard aggregate.
func storeShard(store cas.Store, key cas.Key, agg *Aggregate) error {
	data, err := json.Marshal(agg)
	if err != nil {
		return fmt.Errorf("corpus: encoding shard: %w", err)
	}
	artifact, err := store.Put(data)
	if err != nil {
		return err
	}
	return store.Link(key, artifact)
}

// ClassifyAll classifies the whole corpus of g under env: a
// par.MapReduceScratch over the corpus shards, each shard either served
// from env.Store or generated+classified through the compiled automaton on
// pooled scratch, partials merged in shard order. The Aggregate is
// bit-identical for any worker count and any cache state; RunStats reports
// the hit/execute split (also accumulated on env.Metrics as
// corpus.shards.hit / corpus.shards.exec).
func ClassifyAll(env *exp.Env, g *Generator) (*Aggregate, RunStats, error) {
	type partial struct {
		agg      Aggregate
		executed int
		cached   int
	}
	nShards := NumShards(g.spec.N)
	cls := core.Compiled()
	opts := append(append([]par.Option{}, env.ParOpts()...), par.Grain(1))
	res, err := par.MapReduceScratch(nShards, scratchPool,
		func(_, lo, hi int, sc *shardScratch) (partial, error) {
			var p partial
			for s := lo; s < hi; s++ {
				elo, ehi := s*ShardSize, min((s+1)*ShardSize, g.spec.N)
				var key cas.Key
				if env.Store != nil {
					key = shardKey(g, s, elo, ehi)
					if agg, ok, err := lookupShard(env.Store, key); err != nil {
						return p, err
					} else if ok {
						p.agg.Merge(agg)
						p.cached++
						continue
					}
				}
				agg := classifyShard(g, cls, elo, ehi, sc)
				if env.Store != nil {
					if err := storeShard(env.Store, key, &agg); err != nil {
						return p, err
					}
				}
				p.agg.Merge(&agg)
				p.executed++
			}
			return p, nil
		},
		func(a, b partial) partial {
			a.agg.Merge(&b.agg)
			a.executed += b.executed
			a.cached += b.cached
			return a
		}, opts...)
	if err != nil {
		return nil, RunStats{}, err
	}
	stats := RunStats{ShardsExecuted: res.executed, ShardsCached: res.cached}
	if env.Metrics != nil {
		env.Metrics.Inc("corpus.shards.exec", int64(stats.ShardsExecuted))
		env.Metrics.Inc("corpus.shards.hit", int64(stats.ShardsCached))
	}
	return &res.agg, stats, nil
}

// abbr abbreviates a direction to its initials, like the core confusion
// matrix rendering ("Interactive computing" → "IC").
func abbr(d catalog.Direction) string {
	out := ""
	for _, w := range strings.Fields(string(d)) {
		out += strings.ToUpper(w[:1])
	}
	return out
}

// RenderClassify renders the classification view of an aggregate: the 5×5
// confusion matrix, accuracy, and the predicted-direction distribution.
// Pure integer state in, deterministic bytes out.
func (a *Aggregate) RenderClassify() string {
	var b strings.Builder
	fmt.Fprintf(&b, "corpus classification: %d entries\n\n", a.Total)
	fmt.Fprintf(&b, "%-6s", "t\\p")
	dirs := catalog.Directions()
	for _, d := range dirs {
		fmt.Fprintf(&b, "%9s", abbr(d))
	}
	b.WriteByte('\n')
	for t, d := range dirs {
		fmt.Fprintf(&b, "%-6s", abbr(d))
		for p := range dirs {
			fmt.Fprintf(&b, "%9d", a.Confusion[t][p])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\naccuracy: %.4f (%d/%d correct, %d misclassified)\n",
		a.Accuracy(), a.Correct(), a.Total, a.Total-a.Correct())
	fmt.Fprintf(&b, "\n%-26s %9s %9s\n", "direction", "true", "predicted")
	for i, d := range dirs {
		fmt.Fprintf(&b, "%-26s %9d %9d\n", string(d), a.TrueCount(i), a.PredictedCount(i))
	}
	return b.String()
}

// RenderStats renders the corpus-shape view: direction distribution with
// shares, and description length statistics.
func (a *Aggregate) RenderStats() string {
	var b strings.Builder
	fmt.Fprintf(&b, "corpus statistics: %d entries\n\n", a.Total)
	fmt.Fprintf(&b, "%-26s %9s %8s\n", "direction", "entries", "share")
	for i, d := range catalog.Directions() {
		share := 0.0
		if a.Total > 0 {
			share = float64(a.TrueCount(i)) / float64(a.Total)
		}
		fmt.Fprintf(&b, "%-26s %9d %7.2f%%\n", string(d), a.TrueCount(i), share*100)
	}
	meanLen, meanHits := 0.0, 0.0
	minLen := a.MinLen
	if a.Total > 0 {
		meanLen = float64(a.DescBytes) / float64(a.Total)
		meanHits = float64(a.KeywordHits) / float64(a.Total)
	} else {
		minLen = 0
	}
	fmt.Fprintf(&b, "\ndescription length: min %d, mean %.1f, max %d bytes (%d total)\n",
		minLen, meanLen, a.MaxLen, a.DescBytes)
	fmt.Fprintf(&b, "winning-direction keyword hits: %.2f per entry\n", meanHits)
	return b.String()
}
