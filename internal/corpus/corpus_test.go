package corpus

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cas"
	"repro/internal/catalog"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/par"
	"repro/internal/telemetry"
)

func testEnv(workers int, store cas.Store) *exp.Env {
	sim := clock.NewSim(1)
	env := &exp.Env{Seed: 1, Clock: sim, Metrics: telemetry.NewWithClock(sim), Store: store}
	if workers > 0 {
		env.Par = []par.Option{par.Workers(workers)}
	}
	return env
}

// Entry i must be a pure function of (seed, i): independent of the buffer
// it lands in, of generation order, and of any other entry.
func TestGeneratorDeterminism(t *testing.T) {
	g := NewGenerator(DefaultSpec(1000), 42)
	for _, i := range []int{0, 1, 17, 999} {
		a, da := g.Describe(i, nil)
		b, db := g.Describe(i, make([]byte, 0, 4096))
		if !bytes.Equal(a, b) || da != db {
			t.Fatalf("entry %d not reproducible: %q/%d vs %q/%d", i, a, da, b, db)
		}
		tool := g.Tool(i)
		if tool.Description != string(a) || tool.Direction != catalog.Directions()[da] {
			t.Fatalf("Tool(%d) disagrees with Describe: %+v vs %q/%d", i, tool, a, da)
		}
	}
	// A second generator over the same (spec, seed) is the same corpus; a
	// different seed is a different one.
	g2 := NewGenerator(DefaultSpec(1000), 42)
	a, _ := g.Describe(123, nil)
	b, _ := g2.Describe(123, nil)
	if !bytes.Equal(a, b) {
		t.Fatal("same (spec, seed) produced different corpora")
	}
	g3 := NewGenerator(DefaultSpec(1000), 43)
	c, _ := g3.Describe(123, nil)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced the same entry")
	}
}

// Steady-state generation must not allocate: Describe into a warm buffer.
func TestDescribeZeroAllocs(t *testing.T) {
	g := NewGenerator(DefaultSpec(1000), 7)
	buf, _ := g.Describe(0, nil)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		buf, _ = g.Describe(i%1000, buf[:0])
		i++
	})
	if allocs != 0 {
		t.Fatalf("Describe allocates %.1f times per op, want 0", allocs)
	}
}

// The filler vocabulary must be classification-neutral: no keyword may
// occur in any space-joined sequence of filler words. Joining the whole
// vocabulary (and its reverse, to cover both adjacency orders) must score
// zero in every direction.
func TestFillerVocabularyIsNeutral(t *testing.T) {
	words := fillerVocab[:]
	joined := strings.Join(words, " ")
	rev := make([]string, len(words))
	for i, w := range words {
		rev[len(words)-1-i] = w
	}
	for _, text := range []string{joined, strings.Join(rev, " ")} {
		cl := core.ClassifyDescription(text)
		if len(cl.Scores) != 0 {
			t.Fatalf("filler vocabulary matches keywords: %v in %q", cl.Scores, text)
		}
	}
}

// The mix knob steers the generated direction distribution.
func TestGeneratorMix(t *testing.T) {
	spec := DefaultSpec(5000)
	spec.Mix = [5]float64{0, 3, 0, 0, 1} // orchestration-heavy, some big data
	g := NewGenerator(spec, 11)
	var counts [5]int
	for i := 0; i < spec.N; i++ {
		_, d := g.Describe(i, nil)
		counts[d]++
	}
	if counts[0] != 0 || counts[2] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight directions generated entries: %v", counts)
	}
	ratio := float64(counts[1]) / float64(counts[4])
	if ratio < 2.5 || ratio > 3.6 {
		t.Fatalf("mix 3:1 produced ratio %.2f (%v)", ratio, counts)
	}
}

// naiveAggregate recomputes the aggregate with the allocating convenience
// classifier — the semantic oracle for the sharded pipeline.
func naiveAggregate(g *Generator) Aggregate {
	var agg Aggregate
	for i := 0; i < g.Spec().N; i++ {
		desc, dir := g.Describe(i, nil)
		cl := core.ClassifyDescription(string(desc))
		pred := cl.Direction.Index()
		agg.Total++
		agg.Confusion[dir][pred]++
		agg.DescBytes += int64(len(desc))
		if agg.Total == 1 {
			agg.MinLen = len(desc)
			agg.MaxLen = len(desc)
		} else {
			agg.MinLen = min(agg.MinLen, len(desc))
			agg.MaxLen = max(agg.MaxLen, len(desc))
		}
		agg.KeywordHits += int64(len(cl.Matched))
	}
	return agg
}

// The sharded pipeline must agree exactly with entry-by-entry
// classification through the public API.
func TestClassifyAllMatchesNaive(t *testing.T) {
	g := NewGenerator(DefaultSpec(2*ShardSize+123), 5)
	agg, stats, err := ClassifyAll(testEnv(4, nil), g)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveAggregate(g)
	if !reflect.DeepEqual(*agg, want) {
		t.Fatalf("sharded aggregate diverges:\n got %+v\nwant %+v", *agg, want)
	}
	if stats.ShardsExecuted != NumShards(g.Spec().N) || stats.ShardsCached != 0 {
		t.Fatalf("storeless run stats = %+v", stats)
	}
	if agg.Accuracy() < 0.55 {
		t.Fatalf("default corpus accuracy %.3f implausibly low", agg.Accuracy())
	}
}

// Satellite: worker invariance — sequential and parallel runs produce
// byte-identical aggregates and rendered artifacts on a 10^4 corpus.
func TestClassifyAllWorkerInvariance(t *testing.T) {
	spec := DefaultSpec(10_000)
	var ref *Aggregate
	var refText string
	for _, workers := range []int{1, 4, 8} {
		g := NewGenerator(spec, 9)
		agg, _, err := ClassifyAll(testEnv(workers, nil), g)
		if err != nil {
			t.Fatal(err)
		}
		text := agg.RenderClassify() + agg.RenderStats()
		if ref == nil {
			ref, refText = agg, text
			continue
		}
		if !reflect.DeepEqual(*agg, *ref) {
			t.Fatalf("workers=%d aggregate differs from workers=1", workers)
		}
		if text != refText {
			t.Fatalf("workers=%d artifact bytes differ from workers=1", workers)
		}
	}
}

// Satellite: cold/warm — a warm store serves every shard, zero bodies run,
// and the bytes stay identical.
func TestClassifyAllColdWarm(t *testing.T) {
	spec := DefaultSpec(3*ShardSize + 7)
	store := cas.NewMemStore()
	g := NewGenerator(spec, 13)

	env := testEnv(4, store)
	cold, coldStats, err := ClassifyAll(env, g)
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.ShardsExecuted != 4 || coldStats.ShardsCached != 0 {
		t.Fatalf("cold stats = %+v, want 4 executed", coldStats)
	}
	if got := env.Metrics.Counter("corpus.shards.exec"); got != 4 {
		t.Fatalf("corpus.shards.exec = %d, want 4", got)
	}

	warmEnv := testEnv(8, store)
	warm, warmStats, err := ClassifyAll(warmEnv, g)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.ShardsExecuted != 0 || warmStats.ShardsCached != 4 {
		t.Fatalf("warm stats = %+v, want 4 cached", warmStats)
	}
	if got := warmEnv.Metrics.Counter("corpus.shards.hit"); got != 4 {
		t.Fatalf("corpus.shards.hit = %d, want 4", got)
	}
	if !reflect.DeepEqual(*warm, *cold) {
		t.Fatal("warm aggregate differs from cold")
	}
}

// Tentpole: partial invalidation — growing the corpus leaves every
// untouched full shard's memo key valid; only the formerly-partial shard
// and the new tail execute.
func TestClassifyAllPartialInvalidation(t *testing.T) {
	store := cas.NewMemStore()
	const n1 = 2*ShardSize + 100
	spec1 := DefaultSpec(n1)
	if _, stats, err := ClassifyAll(testEnv(4, store), NewGenerator(spec1, 21)); err != nil {
		t.Fatal(err)
	} else if stats.ShardsExecuted != 3 {
		t.Fatalf("first run executed %d shards, want 3", stats.ShardsExecuted)
	}

	// Grow by one full shard: shards 0 and 1 are untouched (cache hits),
	// shard 2 changes range 100 → ShardSize (dirty), shard 3 is new.
	const n2 = 3*ShardSize + 100
	spec2 := DefaultSpec(n2)
	agg, stats, err := ClassifyAll(testEnv(4, store), NewGenerator(spec2, 21))
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShardsCached != 2 || stats.ShardsExecuted != 2 {
		t.Fatalf("grown run stats = %+v, want 2 cached + 2 executed", stats)
	}
	want := naiveAggregate(NewGenerator(spec2, 21))
	if !reflect.DeepEqual(*agg, want) {
		t.Fatal("grown aggregate diverges from naive recomputation")
	}

	// A different seed shares nothing.
	if _, stats, err := ClassifyAll(testEnv(4, store), NewGenerator(spec2, 22)); err != nil {
		t.Fatal(err)
	} else if stats.ShardsCached != 0 {
		t.Fatalf("different seed hit %d cached shards", stats.ShardsCached)
	}
}

// Satellite: the generated corpus round-trips through the streamed catalog
// JSON — export → import → re-export byte-identical — and the imported
// descriptions classify exactly as the pipeline classified them.
func TestCorpusCatalogRoundTrip(t *testing.T) {
	g := NewGenerator(DefaultSpec(500), 31)
	var first bytes.Buffer
	if err := g.ExportTools(catalog.NewToolWriter(&first), g.Spec().N); err != nil {
		t.Fatal(err)
	}
	var back []catalog.Tool
	if err := catalog.StreamTools(bytes.NewReader(first.Bytes()), func(tool catalog.Tool) error {
		back = append(back, tool)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(back) != g.Spec().N {
		t.Fatalf("imported %d tools, want %d", len(back), g.Spec().N)
	}
	var second bytes.Buffer
	tw := catalog.NewToolWriter(&second)
	for _, tool := range back {
		if err := tw.Write(tool); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("re-exported corpus stream differs from the original bytes")
	}

	// Classifying the imported tools entry by entry reproduces the
	// pipeline's confusion matrix.
	var agg Aggregate
	for _, tool := range back {
		pred := core.ClassifyDescription(tool.Description).Direction.Index()
		agg.Confusion[tool.Direction.Index()][pred]++
		agg.Total++
	}
	pipeline, _, err := ClassifyAll(testEnv(2, nil), g)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Confusion != pipeline.Confusion {
		t.Fatal("imported-corpus confusion differs from the pipeline's")
	}
}

// Aggregate merge is associative with the zero value as identity, and
// survives the JSON round-trip the shard cache depends on.
func TestAggregateMergeAndJSON(t *testing.T) {
	g := NewGenerator(DefaultSpec(3*ShardSize), 3)
	cls := core.Compiled()
	sc := &shardScratch{}
	var whole, pieces Aggregate
	whole = classifyShard(g, cls, 0, 3*ShardSize, sc)
	for s := 0; s < 3; s++ {
		shard := classifyShard(g, cls, s*ShardSize, (s+1)*ShardSize, sc)
		data, err := json.Marshal(&shard)
		if err != nil {
			t.Fatal(err)
		}
		var back Aggregate
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back, shard) {
			t.Fatal("aggregate does not survive the JSON round-trip")
		}
		pieces.Merge(&back)
	}
	if !reflect.DeepEqual(pieces, whole) {
		t.Fatalf("merged shards != whole:\n%+v\n%+v", pieces, whole)
	}
}

// Acceptance: a 10^6-entry corpus (race builds: reduced, see
// size_race_test.go) classifies end-to-end with byte-identical aggregates
// across workers 1/4/8 and cold/warm cache, warm runs executing zero shard
// bodies.
func TestMillionEntryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("10^6-entry end-to-end run skipped in -short mode")
	}
	spec := DefaultSpec(bigCorpusN)
	seed := int64(77)
	nShards := NumShards(spec.N)

	var ref *Aggregate
	var refText string
	for _, workers := range []int{1, 4, 8} {
		store := cas.NewMemStore()
		cold, coldStats, err := ClassifyAll(testEnv(workers, store), NewGenerator(spec, seed))
		if err != nil {
			t.Fatal(err)
		}
		if coldStats.ShardsExecuted != nShards || coldStats.ShardsCached != 0 {
			t.Fatalf("workers=%d cold stats = %+v, want %d executed", workers, coldStats, nShards)
		}
		warm, warmStats, err := ClassifyAll(testEnv(workers, store), NewGenerator(spec, seed))
		if err != nil {
			t.Fatal(err)
		}
		if warmStats.ShardsExecuted != 0 || warmStats.ShardsCached != nShards {
			t.Fatalf("workers=%d warm stats = %+v, want %d cached", workers, warmStats, nShards)
		}
		if !reflect.DeepEqual(*warm, *cold) {
			t.Fatalf("workers=%d warm aggregate differs from cold", workers)
		}
		text := cold.RenderClassify() + cold.RenderStats()
		if ref == nil {
			ref, refText = cold, text
			continue
		}
		if !reflect.DeepEqual(*cold, *ref) || text != refText {
			t.Fatalf("workers=%d results differ from workers=1", workers)
		}
	}
	if ref.Total != spec.N {
		t.Fatalf("classified %d entries, want %d", ref.Total, spec.N)
	}
}

// The registered experiments run under the exp contract: cold executes and
// caches (result-level and shard-level), warm serves both levels, and the
// two experiments share the shard cache through the common corpus stream.
func TestCorpusExperiments(t *testing.T) {
	store := cas.NewMemStore()
	env := testEnv(4, store)
	reg := exp.NewRegistry()
	for _, e := range Experiments() {
		if err := reg.Register(e); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()

	classify, err := reg.Run(ctx, env, "corpus/classify")
	if err != nil {
		t.Fatal(err)
	}
	if classify.Provenance.Cached {
		t.Fatal("cold corpus/classify served from cache")
	}
	nShards := NumShards(RegistryN)
	if got := env.Metrics.Counter("corpus.shards.exec"); got != int64(nShards) {
		t.Fatalf("cold classify executed %d shards, want %d", got, nShards)
	}
	if classify.Metrics["accuracy"] <= 0.5 || classify.Metrics["accuracy"] > 1 {
		t.Fatalf("accuracy metric = %g", classify.Metrics["accuracy"])
	}
	if !strings.Contains(classify.Artifacts["classification"], "accuracy:") {
		t.Fatalf("classification artifact:\n%s", classify.Artifacts["classification"])
	}

	// corpus/stats shares the shard cache: zero additional executions.
	stats, err := reg.Run(ctx, env, "corpus/stats")
	if err != nil {
		t.Fatal(err)
	}
	if got := env.Metrics.Counter("corpus.shards.exec"); got != int64(nShards) {
		t.Fatalf("corpus/stats re-executed shards (exec=%d)", got)
	}
	if stats.Metrics["entries"] != float64(RegistryN) {
		t.Fatalf("stats entries metric = %g", stats.Metrics["entries"])
	}

	// Warm registry runs execute no bodies at all.
	warmEnv := testEnv(1, store)
	warm, err := reg.Run(ctx, warmEnv, "corpus/classify")
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Provenance.Cached {
		t.Fatal("warm corpus/classify not served from the result cache")
	}
	if warm.Artifacts["classification"] != classify.Artifacts["classification"] {
		t.Fatal("warm artifact bytes differ from cold")
	}
}

// Experiment artifacts are byte-identical across worker counts without any
// store — the property regress re-checks from the sealed goldens.
func TestCorpusExperimentWorkerInvariance(t *testing.T) {
	reg := exp.NewRegistry()
	for _, e := range Experiments() {
		if err := reg.Register(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"corpus/classify", "corpus/stats"} {
		var ref string
		for _, workers := range []int{1, 4, 8} {
			res, err := reg.Run(context.Background(), testEnv(workers, nil), name)
			if err != nil {
				t.Fatal(err)
			}
			data, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			if workers == 1 {
				ref = string(data)
			} else if string(data) != ref {
				t.Fatalf("%s result differs at workers=%d", name, workers)
			}
		}
	}
}

// Empty and tiny corpora behave.
func TestClassifyAllEdgeSizes(t *testing.T) {
	agg, stats, err := ClassifyAll(testEnv(4, nil), NewGenerator(DefaultSpec(0), 1))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Total != 0 || stats.ShardsExecuted != 0 {
		t.Fatalf("empty corpus: agg=%+v stats=%+v", agg, stats)
	}
	if !strings.Contains(agg.RenderStats(), "0 entries") {
		t.Fatal("empty render broken")
	}
	one, _, err := ClassifyAll(testEnv(4, nil), NewGenerator(DefaultSpec(1), 1))
	if err != nil {
		t.Fatal(err)
	}
	if one.Total != 1 || one.MinLen == 0 || one.MinLen != one.MaxLen {
		t.Fatalf("single-entry aggregate: %+v", one)
	}
}
