package corpus

import (
	"testing"

	"repro/internal/cas"
	"repro/internal/core"
)

// BenchmarkCorpusGen measures raw entry generation into a warm buffer — the
// per-entry cost floor of the pipeline (steady state: zero allocations).
func BenchmarkCorpusGen(b *testing.B) {
	g := NewGenerator(DefaultSpec(1<<20), 1)
	buf, _ := g.Describe(0, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ = g.Describe(i&(1<<20-1), buf[:0])
	}
	_ = buf
}

// BenchmarkCorpusShard measures one shard body: generate + classify
// ShardSize entries through the compiled automaton on pooled scratch.
func BenchmarkCorpusShard(b *testing.B) {
	g := NewGenerator(DefaultSpec(ShardSize), 1)
	cls := core.Compiled()
	sc := &shardScratch{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := classifyShard(g, cls, 0, ShardSize, sc)
		if agg.Total != ShardSize {
			b.Fatal("short shard")
		}
	}
}

// BenchmarkCorpusClassifySharded runs the full cold pipeline (no store) over
// a 64k-entry corpus at the environment's default worker count.
func BenchmarkCorpusClassifySharded(b *testing.B) {
	g := NewGenerator(DefaultSpec(16*ShardSize), 1)
	env := testEnv(0, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg, _, err := ClassifyAll(env, g)
		if err != nil {
			b.Fatal(err)
		}
		if agg.Total != 16*ShardSize {
			b.Fatal("short run")
		}
	}
}

// BenchmarkCorpusClassifyWarm runs the same pipeline against a fully warm
// store — the zero-bodies path the memoization exists for.
func BenchmarkCorpusClassifyWarm(b *testing.B) {
	g := NewGenerator(DefaultSpec(16*ShardSize), 1)
	store := cas.NewMemStore()
	if _, _, err := ClassifyAll(testEnv(0, store), g); err != nil {
		b.Fatal(err)
	}
	env := testEnv(0, store)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := ClassifyAll(env, g)
		if err != nil {
			b.Fatal(err)
		}
		if stats.ShardsExecuted != 0 {
			b.Fatal("warm run executed shard bodies")
		}
	}
}
