// Package corpus scales the mapping-study engine from paper size (25 tool
// descriptions) to repository-mining size (10^4–10^7 entries): a seeded
// synthetic corpus generator plus a sharded, content-addressed
// classification pipeline over it.
//
// The generator is the workload the ROADMAP's "Big Data management
// direction applied to the paper's own machinery" item asks for:
// parameterized tool-description corpora with a controllable direction mix,
// cross-direction vocabulary overlap, and noise, where entry i is a pure
// function of (seed, i) — shards can generate their slices independently,
// in any order, on any worker count, and always produce the same bytes.
// Classification runs the compiled keyword automaton (core.Compiled) over
// fixed-size corpus shards under par.MapReduceScratch, memoizing each
// shard's aggregate in the content-addressed store: a warm re-run executes
// zero shard bodies, and growing the corpus re-executes only the shards
// whose entry ranges actually changed (classify.go).
package corpus

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/rng"
)

// Spec parameterizes a synthetic corpus. The zero Mix means uniform across
// the five directions; weights are relative, not normalized.
type Spec struct {
	// N is the corpus size (number of tool descriptions).
	N int
	// Mix weighs the five research directions in catalog canonical order
	// when drawing each entry's true direction.
	Mix [5]float64
	// Overlap is the probability that a planted keyword is drawn from a
	// direction other than the entry's true one — the knob that makes
	// classification genuinely confusable instead of trivially separable.
	Overlap float64
	// Noise is the number of neutral filler words per entry (filler never
	// matches any keyword, pinned by TestFillerVocabularyIsNeutral).
	Noise int
	// Keywords is the number of planted keywords per entry.
	Keywords int
}

// DefaultSpec is the reference corpus shape: uniform mix, mild overlap,
// descriptions of roughly catalog length.
func DefaultSpec(n int) Spec {
	return Spec{N: n, Overlap: 0.15, Noise: 12, Keywords: 3}
}

// fingerprint renders every behaviour-determining field except N — shard
// memo keys must survive corpus growth (see classify.go).
func (s Spec) fingerprint() string {
	return fmt.Sprintf("mix=%g,%g,%g,%g,%g|ov=%g|noise=%d|kw=%d",
		s.Mix[0], s.Mix[1], s.Mix[2], s.Mix[3], s.Mix[4], s.Overlap, s.Noise, s.Keywords)
}

// fillerVocab is the neutral background vocabulary. Every word — and every
// space-joined sequence of them — is free of classification keywords, so
// noise dilutes the signal without ever forging it.
var fillerVocab = [...]string{
	"the", "quiet", "harbor", "violet", "method", "chapter", "outline",
	"meadow", "copper", "lantern", "summit", "exact", "mirror", "velvet",
	"anchor", "ribbon", "timber", "marble", "saffron", "quartz", "willow",
	"canyon", "ember", "breeze", "cobalt", "meridian", "pellucid", "tundra",
	"vestibule", "zephyr", "gossamer",
}

// Generator produces the entries of one corpus. It is immutable after
// construction and safe for concurrent use: all per-entry state lives in
// the caller's buffers and a stack-local RNG.
type Generator struct {
	spec Spec
	seed int64
	// vocab holds the per-direction keyword lists in canonical order.
	vocab [5][]string
	// cum is the cumulative (normalized) direction mix.
	cum [5]float64
}

// NewGenerator compiles a generator for the spec and root seed.
func NewGenerator(spec Spec, seed int64) *Generator {
	g := &Generator{spec: spec, seed: seed}
	for i, d := range catalog.Directions() {
		g.vocab[i] = core.KeywordsFor(d)
	}
	mix := spec.Mix
	total := 0.0
	for _, w := range mix {
		total += w
	}
	if total <= 0 {
		mix = [5]float64{1, 1, 1, 1, 1}
		total = 5
	}
	acc := 0.0
	for i, w := range mix {
		acc += w / total
		g.cum[i] = acc
	}
	g.cum[4] = 1 // guard against accumulated rounding at the top bucket
	return g
}

// Spec returns the generator's corpus parameters.
func (g *Generator) Spec() Spec { return g.spec }

// Seed returns the generator's root seed.
func (g *Generator) Seed() int64 { return g.seed }

// direction draws a true direction from the mix.
func (g *Generator) direction(r *rng.Rand) int {
	u := r.Float64()
	for d := 0; d < 4; d++ {
		if u < g.cum[d] {
			return d
		}
	}
	return 4
}

// Describe appends entry i's description to buf and returns the extended
// buffer plus the entry's true direction (canonical index). Entry i is a
// pure function of (seed, i): the per-entry stream is split from the root
// seed with par.SplitSeed, so any shard can generate any slice
// independently. With a capacious buf it performs zero allocations.
func (g *Generator) Describe(i int, buf []byte) ([]byte, int) {
	r := rng.Seeded(par.SplitSeed(g.seed, i))
	dir := g.direction(&r)
	kw := g.spec.Keywords
	noise := g.spec.Noise
	first := true
	for kw+noise > 0 {
		if !first {
			buf = append(buf, ' ')
		}
		first = false
		if r.Intn(kw+noise) < kw {
			// Plant a keyword: usually from the true direction, sometimes
			// (Overlap) from a foreign one.
			d := dir
			if g.spec.Overlap > 0 && r.Float64() < g.spec.Overlap {
				d = (dir + 1 + r.Intn(4)) % 5
			}
			words := g.vocab[d]
			buf = append(buf, words[r.Intn(len(words))]...)
			kw--
		} else {
			buf = append(buf, fillerVocab[r.Intn(len(fillerVocab))]...)
			noise--
		}
	}
	return buf, dir
}

// Tool materializes entry i as a catalog.Tool — the allocating convenience
// the streamed JSON export uses. The manual label (Direction) is the true
// direction the entry was generated from.
func (g *Generator) Tool(i int) catalog.Tool {
	desc, dir := g.Describe(i, nil)
	return catalog.Tool{
		Name:        fmt.Sprintf("syn-%08d", i),
		Direction:   catalog.Directions()[dir],
		Description: string(desc),
	}
}

// ExportTools streams entries [0, n) of the corpus as the catalog tool
// format through w — the bridge from generated corpora to every consumer
// of catalog JSON.
func (g *Generator) ExportTools(w *catalog.ToolWriter, n int) error {
	for i := 0; i < n; i++ {
		if err := w.Write(g.Tool(i)); err != nil {
			return err
		}
	}
	return w.Close()
}
