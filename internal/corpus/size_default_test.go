//go:build !race

package corpus

// bigCorpusN is the end-to-end corpus size of the million-entry test. The
// race detector multiplies the cost of every memory access, so the race
// build scales the same test down (size_race_test.go) instead of skipping
// it.
const bigCorpusN = 1_000_000
