package corpus

// The corpus workloads as registered experiments: corpus/classify (the
// sharded classification run: confusion matrix, accuracy, direction
// distribution) and corpus/stats (the corpus-shape statistics). Both
// derive the same generator seed from the Env ("corpus" stream), so they
// share the per-shard aggregate cache: with a store, whichever runs first
// executes the shard bodies and the other resolves every shard warm.

import (
	"context"
	"fmt"

	"repro/internal/exp"
)

// RegistryN is the corpus size of the registered experiments: large enough
// to exercise real sharding (several full shards plus a partial one), small
// enough that `make experiments` stays interactive. Bigger corpora run
// through ClassifyExperiment/StatsExperiment with an explicit n.
const RegistryN = 10_000

// corpusSeedStream names the Env stream both experiments draw the
// generator seed from — shared deliberately (see the package comment).
const corpusSeedStream = "corpus"

// Experiments returns the corpus workloads for registry assembly.
func Experiments() []exp.Experiment {
	return []exp.Experiment{ClassifyExperiment(RegistryN), StatsExperiment(RegistryN)}
}

// params renders the spec as the experiment's declarative identity. Every
// behaviour-determining knob is here: a change to any of them changes the
// Spec fingerprint and therefore every memoized Result derived from it.
func params(s Spec) map[string]any {
	return map[string]any{
		"n":        s.N,
		"overlap":  s.Overlap,
		"noise":    s.Noise,
		"keywords": s.Keywords,
	}
}

// ClassifyExperiment builds the sharded-classification experiment over a
// DefaultSpec corpus of n entries.
func ClassifyExperiment(n int) exp.Experiment {
	s := DefaultSpec(n)
	return exp.Experiment{
		Spec: exp.Spec{Name: "corpus/classify", Params: params(s)},
		Desc: fmt.Sprintf("sharded automaton classification of a %d-entry synthetic corpus (confusion, accuracy)", n),
		Run: func(ctx context.Context, env *exp.Env, spec exp.Spec) (*exp.Result, error) {
			g := NewGenerator(s, env.SeedFor(corpusSeedStream))
			agg, _, err := ClassifyAll(env, g)
			if err != nil {
				return nil, err
			}
			return &exp.Result{
				Artifacts: map[string]string{"classification": agg.RenderClassify()},
				Metrics: map[string]float64{
					"entries":       float64(agg.Total),
					"shards":        float64(NumShards(s.N)),
					"accuracy":      agg.Accuracy(),
					"misclassified": float64(agg.Total - agg.Correct()),
				},
			}, nil
		},
	}
}

// StatsExperiment builds the corpus-shape experiment over the same corpus.
func StatsExperiment(n int) exp.Experiment {
	s := DefaultSpec(n)
	return exp.Experiment{
		Spec: exp.Spec{Name: "corpus/stats", Params: params(s)},
		Desc: fmt.Sprintf("direction mix and description-length statistics of the %d-entry synthetic corpus", n),
		Run: func(ctx context.Context, env *exp.Env, spec exp.Spec) (*exp.Result, error) {
			g := NewGenerator(s, env.SeedFor(corpusSeedStream))
			agg, _, err := ClassifyAll(env, g)
			if err != nil {
				return nil, err
			}
			return &exp.Result{
				Artifacts: map[string]string{"stats": agg.RenderStats()},
				Metrics: map[string]float64{
					"entries":           float64(agg.Total),
					"mean_len":          float64(agg.DescBytes) / float64(max(agg.Total, 1)),
					"kw_hits_per_entry": float64(agg.KeywordHits) / float64(max(agg.Total, 1)),
				},
			}, nil
		},
	}
}
