//go:build race

package corpus

// bigCorpusN under the race detector: the same end-to-end path at a size
// the instrumented build sweeps in seconds.
const bigCorpusN = 50_000
