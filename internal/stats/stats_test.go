package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanBasic(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSumKahanStability(t *testing.T) {
	// 1e8 + many tiny values: naive summation loses the tiny values,
	// Kahan keeps them.
	xs := make([]float64, 1001)
	xs[0] = 1e8
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-8
	}
	got := Sum(xs)
	want := 1e8 + 1000e-8
	if !almostEqual(got, want, 1e-10) {
		t.Errorf("Sum = %.15g, want %.15g", got, want)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 = 32/7.
	if got, want := Variance(xs), 32.0/7.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got, want := StdDev(xs), math.Sqrt(32.0/7.0); !almostEqual(got, want, 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of single sample should be 0")
	}
}

func TestMinMaxErrors(t *testing.T) {
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
	min, err := Min([]float64{3, -1, 2})
	if err != nil || min != -1 {
		t.Errorf("Min = %v, %v", min, err)
	}
	max, err := Max([]float64{3, -1, 2})
	if err != nil || max != 3 {
		t.Errorf("Max = %v, %v", max, err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	med, err := Median(xs)
	if err != nil || med != 35 {
		t.Errorf("Median = %v, %v; want 35", med, err)
	}
	p0, _ := Percentile(xs, 0)
	p100, _ := Percentile(xs, 100)
	if p0 != 15 || p100 != 50 {
		t.Errorf("P0=%v P100=%v, want 15 and 50", p0, p100)
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) should error")
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("Percentile(nil) err = %v, want ErrEmpty", err)
	}
	// Interpolation: p=25 over 5 sorted values is rank 1 → 20.
	p25, _ := Percentile(xs, 25)
	if p25 != 20 {
		t.Errorf("P25 = %v, want 20", p25)
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	_, _ = Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Errorf("Percentile mutated input: %v", ys)
	}
}

func TestGeoAndHarmonicMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4, 16})
	if err != nil || !almostEqual(g, 4, 1e-12) {
		t.Errorf("GeoMean = %v, %v; want 4", g, err)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("GeoMean with zero should error")
	}
	h, err := HarmonicMean([]float64{1, 2, 4})
	if err != nil || !almostEqual(h, 3.0/(1+0.5+0.25), 1e-12) {
		t.Errorf("HarmonicMean = %v, %v", h, err)
	}
	if _, err := HarmonicMean(nil); err != ErrEmpty {
		t.Errorf("HarmonicMean(nil) err = %v", err)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("unexpected summary %+v", s)
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) err = %v", err)
	}
}

// Property: mean is always within [min, max].
func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		return m >= lo-1e-6 && m <= hi+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: variance is non-negative and shift-invariant.
func TestVarianceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		shift := rng.Float64()*100 - 50
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			ys[i] = xs[i] + shift
		}
		vx, vy := Variance(xs), Variance(ys)
		if vx < 0 {
			t.Fatalf("negative variance %v", vx)
		}
		if !almostEqual(vx, vy, 1e-6*(1+math.Abs(vx))) {
			t.Fatalf("variance not shift-invariant: %v vs %v", vx, vy)
		}
	}
}
