package stats

import (
	"fmt"
	"math"
	"sort"
)

// CategoricalDist is a frequency distribution over named categories. It is the
// data type behind the paper's pie charts (Figures 2 and 4): each category is
// a research direction and each count is a number of tools or votes.
//
// The zero value is an empty, ready-to-use distribution.
type CategoricalDist struct {
	counts map[string]int
	order  []string // first-observation order, used for stable iteration
}

// NewCategoricalDist returns a distribution with the given category order
// pre-registered (all counts zero). Registering the order up front keeps
// renderings aligned with the paper even for zero-count categories.
func NewCategoricalDist(categories ...string) *CategoricalDist {
	d := &CategoricalDist{counts: make(map[string]int, len(categories))}
	for _, c := range categories {
		d.register(c)
	}
	return d
}

func (d *CategoricalDist) register(category string) {
	if d.counts == nil {
		d.counts = make(map[string]int)
	}
	if _, ok := d.counts[category]; !ok {
		d.counts[category] = 0
		d.order = append(d.order, category)
	}
}

// Add increments category by n (n may be negative but the count is clamped
// at zero). Unknown categories are registered on first use.
func (d *CategoricalDist) Add(category string, n int) {
	d.register(category)
	c := d.counts[category] + n
	if c < 0 {
		c = 0
	}
	d.counts[category] = c
}

// Observe increments category by one.
func (d *CategoricalDist) Observe(category string) { d.Add(category, 1) }

// Count returns the count for category (zero for unknown categories).
func (d *CategoricalDist) Count(category string) int { return d.counts[category] }

// Total returns the sum of all counts.
func (d *CategoricalDist) Total() int {
	total := 0
	for _, c := range d.counts {
		total += c
	}
	return total
}

// Categories returns the categories in registration order.
func (d *CategoricalDist) Categories() []string {
	return append([]string(nil), d.order...)
}

// Counts returns the counts aligned with Categories().
func (d *CategoricalDist) Counts() []int {
	out := make([]int, len(d.order))
	for i, c := range d.order {
		out[i] = d.counts[c]
	}
	return out
}

// Share returns category's fraction of the total, or 0 if the distribution
// is empty.
func (d *CategoricalDist) Share(category string) float64 {
	total := d.Total()
	if total == 0 {
		return 0
	}
	return float64(d.counts[category]) / float64(total)
}

// Shares returns the fraction per category aligned with Categories().
func (d *CategoricalDist) Shares() []float64 {
	out := make([]float64, len(d.order))
	for i, c := range d.order {
		out[i] = d.Share(c)
	}
	return out
}

// ArgMax returns the category with the highest count. Ties resolve to the
// earliest-registered category. It returns ErrEmpty when no categories exist.
func (d *CategoricalDist) ArgMax() (string, error) {
	if len(d.order) == 0 {
		return "", ErrEmpty
	}
	best := d.order[0]
	for _, c := range d.order[1:] {
		if d.counts[c] > d.counts[best] {
			best = c
		}
	}
	return best, nil
}

// ArgMin returns the category with the lowest count (ties to earliest).
func (d *CategoricalDist) ArgMin() (string, error) {
	if len(d.order) == 0 {
		return "", ErrEmpty
	}
	best := d.order[0]
	for _, c := range d.order[1:] {
		if d.counts[c] < d.counts[best] {
			best = c
		}
	}
	return best, nil
}

// Entropy returns the Shannon entropy (bits) of the normalized distribution.
// A perfectly balanced distribution over k categories has entropy log2(k);
// the paper's Q2 ("effort is quite balanced") corresponds to entropy close
// to that maximum.
func (d *CategoricalDist) Entropy() float64 {
	total := d.Total()
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range d.counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// Balance returns entropy normalized to [0,1] by the maximum achievable
// entropy over the registered categories (1 = perfectly balanced).
func (d *CategoricalDist) Balance() float64 {
	k := len(d.order)
	if k <= 1 {
		return 1
	}
	return d.Entropy() / math.Log2(float64(k))
}

// Imbalance returns max share / min nonzero-capable share ratio measured as
// (max count) / (min count), with min clamped to 1 to stay finite. The
// paper's Q3 notes an 11:1 spread between orchestration and energy votes.
func (d *CategoricalDist) Imbalance() float64 {
	if len(d.order) == 0 {
		return 1
	}
	maxC, minC := 0, math.MaxInt
	for _, c := range d.counts {
		if c > maxC {
			maxC = c
		}
		if c < minC {
			minC = c
		}
	}
	if minC < 1 {
		minC = 1
	}
	if maxC < 1 {
		return 1
	}
	return float64(maxC) / float64(minC)
}

// ChiSquareUniform returns the chi-square statistic of the distribution
// against the uniform distribution over its registered categories, along with
// the degrees of freedom. Large values indicate imbalance (used to contrast
// Fig. 2's balanced tool spread against Fig. 4's skewed vote spread).
func (d *CategoricalDist) ChiSquareUniform() (statistic float64, dof int) {
	k := len(d.order)
	total := d.Total()
	if k == 0 || total == 0 {
		return 0, 0
	}
	expected := float64(total) / float64(k)
	var chi2 float64
	for _, c := range d.order {
		diff := float64(d.counts[c]) - expected
		chi2 += diff * diff / expected
	}
	return chi2, k - 1
}

// String renders "cat:count" pairs in registration order.
func (d *CategoricalDist) String() string {
	s := ""
	for i, c := range d.order {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", c, d.counts[c])
	}
	return s
}

// Clone returns a deep copy of the distribution.
func (d *CategoricalDist) Clone() *CategoricalDist {
	nd := NewCategoricalDist(d.order...)
	for _, c := range d.order {
		nd.counts[c] = d.counts[c]
	}
	return nd
}

// Equal reports whether two distributions have identical categories (order
// insensitive) and counts.
func (d *CategoricalDist) Equal(o *CategoricalDist) bool {
	if len(d.counts) != len(o.counts) {
		return false
	}
	for c, n := range d.counts {
		if o.counts[c] != n {
			return false
		}
	}
	return true
}

// IntHistogram is a frequency distribution over small integer values, the
// data type behind the paper's Figure 3 (number of research directions
// covered per institution). The zero value is ready to use.
type IntHistogram struct {
	counts map[int]int
}

// Observe increments the bucket for v.
func (h *IntHistogram) Observe(v int) {
	if h.counts == nil {
		h.counts = make(map[int]int)
	}
	h.counts[v]++
}

// Count returns the number of observations with value v.
func (h *IntHistogram) Count(v int) int { return h.counts[v] }

// Total returns the total number of observations.
func (h *IntHistogram) Total() int {
	t := 0
	for _, c := range h.counts {
		t += c
	}
	return t
}

// Values returns the observed values in ascending order.
func (h *IntHistogram) Values() []int {
	vs := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// Buckets returns (value, count) pairs for the closed range [lo, hi],
// including zero-count buckets, which is how Figure 3 draws its x axis 1..5.
func (h *IntHistogram) Buckets(lo, hi int) (values, counts []int) {
	for v := lo; v <= hi; v++ {
		values = append(values, v)
		counts = append(counts, h.counts[v])
	}
	return values, counts
}

// MaxCount returns the largest bucket count (0 when empty).
func (h *IntHistogram) MaxCount() int {
	m := 0
	for _, c := range h.counts {
		if c > m {
			m = c
		}
	}
	return m
}

// Mode returns the most frequent value; ties resolve to the smallest value.
func (h *IntHistogram) Mode() (int, error) {
	if len(h.counts) == 0 {
		return 0, ErrEmpty
	}
	vs := h.Values()
	best := vs[0]
	for _, v := range vs[1:] {
		if h.counts[v] > h.counts[best] {
			best = v
		}
	}
	return best, nil
}
