package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCategoricalDistBasics(t *testing.T) {
	d := NewCategoricalDist("a", "b", "c")
	if got := d.Total(); got != 0 {
		t.Fatalf("fresh Total = %d", got)
	}
	d.Observe("a")
	d.Add("b", 3)
	d.Observe("z") // auto-registered
	if d.Count("a") != 1 || d.Count("b") != 3 || d.Count("z") != 1 {
		t.Errorf("counts wrong: %s", d)
	}
	if d.Total() != 5 {
		t.Errorf("Total = %d, want 5", d.Total())
	}
	cats := d.Categories()
	want := []string{"a", "b", "c", "z"}
	if len(cats) != len(want) {
		t.Fatalf("Categories = %v", cats)
	}
	for i := range want {
		if cats[i] != want[i] {
			t.Errorf("Categories[%d] = %q, want %q", i, cats[i], want[i])
		}
	}
	counts := d.Counts()
	if counts[0] != 1 || counts[1] != 3 || counts[2] != 0 || counts[3] != 1 {
		t.Errorf("Counts = %v", counts)
	}
}

func TestCategoricalDistClamping(t *testing.T) {
	d := NewCategoricalDist("x")
	d.Add("x", -5)
	if d.Count("x") != 0 {
		t.Errorf("negative add should clamp to 0, got %d", d.Count("x"))
	}
}

func TestShares(t *testing.T) {
	// The paper's Fig 2 distribution: 3/7/3/6/6 over 25 tools.
	d := NewCategoricalDist("interactive", "orchestration", "energy", "portability", "bigdata")
	d.Add("interactive", 3)
	d.Add("orchestration", 7)
	d.Add("energy", 3)
	d.Add("portability", 6)
	d.Add("bigdata", 6)
	if got := d.Share("orchestration"); !almostEqual(got, 0.28, 1e-12) {
		t.Errorf("orchestration share = %v, want 0.28", got)
	}
	if got := d.Share("interactive"); !almostEqual(got, 0.12, 1e-12) {
		t.Errorf("interactive share = %v, want 0.12", got)
	}
	sum := 0.0
	for _, s := range d.Shares() {
		sum += s
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Errorf("shares sum = %v", sum)
	}
}

func TestArgMaxArgMin(t *testing.T) {
	d := NewCategoricalDist()
	if _, err := d.ArgMax(); err != ErrEmpty {
		t.Errorf("ArgMax on empty err = %v", err)
	}
	if _, err := d.ArgMin(); err != ErrEmpty {
		t.Errorf("ArgMin on empty err = %v", err)
	}
	d.Add("a", 2)
	d.Add("b", 7)
	d.Add("c", 1)
	if got, _ := d.ArgMax(); got != "b" {
		t.Errorf("ArgMax = %q", got)
	}
	if got, _ := d.ArgMin(); got != "c" {
		t.Errorf("ArgMin = %q", got)
	}
	// Tie resolves to earliest registered.
	d2 := NewCategoricalDist("x", "y")
	d2.Add("x", 3)
	d2.Add("y", 3)
	if got, _ := d2.ArgMax(); got != "x" {
		t.Errorf("tie ArgMax = %q, want x", got)
	}
}

func TestEntropyAndBalance(t *testing.T) {
	d := NewCategoricalDist("a", "b", "c", "d")
	for _, c := range d.Categories() {
		d.Add(c, 5)
	}
	if got := d.Entropy(); !almostEqual(got, 2, 1e-12) {
		t.Errorf("uniform entropy = %v, want 2 bits", got)
	}
	if got := d.Balance(); !almostEqual(got, 1, 1e-12) {
		t.Errorf("uniform balance = %v, want 1", got)
	}
	skew := NewCategoricalDist("a", "b")
	skew.Add("a", 100)
	if got := skew.Entropy(); got != 0 {
		t.Errorf("degenerate entropy = %v, want 0", got)
	}
	if got := skew.Balance(); got != 0 {
		t.Errorf("degenerate balance = %v, want 0", got)
	}
}

func TestChiSquareUniform(t *testing.T) {
	d := NewCategoricalDist("a", "b")
	d.Add("a", 10)
	d.Add("b", 10)
	chi2, dof := d.ChiSquareUniform()
	if chi2 != 0 || dof != 1 {
		t.Errorf("uniform chi2 = %v dof = %d", chi2, dof)
	}
	d2 := NewCategoricalDist("a", "b")
	d2.Add("a", 20)
	chi2, dof = d2.ChiSquareUniform()
	if !almostEqual(chi2, 20, 1e-12) || dof != 1 {
		t.Errorf("skewed chi2 = %v dof = %d, want 20, 1", chi2, dof)
	}
}

func TestImbalance(t *testing.T) {
	// Fig 4 distribution 4/11/1/6/6: imbalance 11.
	d := NewCategoricalDist("ic", "orch", "energy", "pp", "bd")
	d.Add("ic", 4)
	d.Add("orch", 11)
	d.Add("energy", 1)
	d.Add("pp", 6)
	d.Add("bd", 6)
	if got := d.Imbalance(); !almostEqual(got, 11, 1e-12) {
		t.Errorf("Imbalance = %v, want 11", got)
	}
}

func TestCloneAndEqual(t *testing.T) {
	d := NewCategoricalDist("a", "b")
	d.Add("a", 2)
	c := d.Clone()
	if !d.Equal(c) {
		t.Error("clone should be equal")
	}
	c.Observe("a")
	if d.Equal(c) {
		t.Error("mutated clone should differ")
	}
	if d.Count("a") != 2 {
		t.Error("mutating clone affected original")
	}
}

func TestIntHistogram(t *testing.T) {
	var h IntHistogram
	if h.Total() != 0 || h.MaxCount() != 0 {
		t.Error("zero-value histogram should be empty")
	}
	if _, err := h.Mode(); err != ErrEmpty {
		t.Errorf("Mode on empty err = %v", err)
	}
	// Fig 3 data: directions-covered per institution {1:5, 2:1, 3:2, 4:1}.
	obs := []int{1, 1, 1, 1, 1, 2, 3, 3, 4}
	for _, v := range obs {
		h.Observe(v)
	}
	if h.Total() != 9 {
		t.Errorf("Total = %d, want 9", h.Total())
	}
	values, counts := h.Buckets(1, 5)
	wantCounts := []int{5, 1, 2, 1, 0}
	for i := range values {
		if counts[i] != wantCounts[i] {
			t.Errorf("bucket %d = %d, want %d", values[i], counts[i], wantCounts[i])
		}
	}
	if mode, _ := h.Mode(); mode != 1 {
		t.Errorf("Mode = %d, want 1", mode)
	}
	if h.MaxCount() != 5 {
		t.Errorf("MaxCount = %d, want 5", h.MaxCount())
	}
	vs := h.Values()
	if len(vs) != 4 || vs[0] != 1 || vs[3] != 4 {
		t.Errorf("Values = %v", vs)
	}
}

// Property: total observations equal sum of bucket counts over full range.
func TestIntHistogramConservation(t *testing.T) {
	f := func(raw []uint8) bool {
		var h IntHistogram
		for _, v := range raw {
			h.Observe(int(v % 16))
		}
		_, counts := h.Buckets(0, 15)
		sum := 0
		for _, c := range counts {
			sum += c
		}
		return sum == len(raw) && h.Total() == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: shares always sum to ~1 for non-empty distributions, and entropy
// is bounded by log2(k).
func TestDistributionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(8)
		cats := make([]string, k)
		for i := range cats {
			cats[i] = string(rune('a' + i))
		}
		d := NewCategoricalDist(cats...)
		n := 1 + rng.Intn(100)
		for i := 0; i < n; i++ {
			d.Observe(cats[rng.Intn(k)])
		}
		var sum float64
		for _, s := range d.Shares() {
			sum += s
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Fatalf("shares sum %v", sum)
		}
		if h := d.Entropy(); h < -1e-12 || h > math.Log2(float64(k))+1e-9 {
			t.Fatalf("entropy %v out of [0, log2(%d)]", h, k)
		}
	}
}
