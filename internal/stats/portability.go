package stats

import "fmt"

// This file implements the performance-portability metric of Pennycook,
// Sewall and Lee ("Implications of a metric for performance portability",
// FGCS 2019), which the paper cites in Section 2.4 as the definition of
// performance portability. The metric is the harmonic mean of an
// application's performance efficiency across a platform set, and is zero if
// the application fails to run on any platform in the set.

// PlatformEfficiency records an application's performance efficiency on one
// platform. Efficiency is a fraction in [0,1]: achieved performance divided
// by the best-known (architectural or application-best) performance on that
// platform. Supported=false marks a platform the application cannot run on.
type PlatformEfficiency struct {
	Platform   string
	Efficiency float64
	Supported  bool
}

// PerformancePortability computes the Pennycook PP metric over a platform
// set. It returns 0 when any platform is unsupported (per the metric's
// definition) and an error when the set is empty or an efficiency is outside
// (0,1] on a supported platform.
func PerformancePortability(effs []PlatformEfficiency) (float64, error) {
	if len(effs) == 0 {
		return 0, ErrEmpty
	}
	var inv float64
	for _, e := range effs {
		if !e.Supported {
			return 0, nil
		}
		if e.Efficiency <= 0 || e.Efficiency > 1 {
			return 0, fmt.Errorf("stats: efficiency %v on %q outside (0,1]", e.Efficiency, e.Platform)
		}
		inv += 1 / e.Efficiency
	}
	return float64(len(effs)) / inv, nil
}

// PortabilityProfile compares several applications' PP values over the same
// platform set, as a performance-portability library evaluation would.
type PortabilityProfile struct {
	Application string
	PP          float64
}

// RankPortability computes and sorts PP for a map of application →
// per-platform efficiencies, highest PP first. Applications with invalid
// efficiency data are skipped and reported in the error (joined).
func RankPortability(apps map[string][]PlatformEfficiency) ([]PortabilityProfile, error) {
	out := make([]PortabilityProfile, 0, len(apps))
	var firstErr error
	for name, effs := range apps {
		pp, err := PerformancePortability(effs)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("stats: application %q: %w", name, err)
			}
			continue
		}
		out = append(out, PortabilityProfile{Application: name, PP: pp})
	}
	// Insertion sort by PP descending, name ascending for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if b.PP > a.PP || (b.PP == a.PP && b.Application < a.Application) {
				out[j-1], out[j] = b, a
			} else {
				break
			}
		}
	}
	return out, firstErr
}
