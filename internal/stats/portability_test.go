package stats

import (
	"math/rand"
	"testing"
)

func TestPerformancePortability(t *testing.T) {
	// Harmonic mean of 0.5 and 1.0 is 2/3.
	pp, err := PerformancePortability([]PlatformEfficiency{
		{Platform: "cpu", Efficiency: 0.5, Supported: true},
		{Platform: "gpu", Efficiency: 1.0, Supported: true},
	})
	if err != nil || !almostEqual(pp, 2.0/3.0, 1e-12) {
		t.Errorf("PP = %v, %v; want 2/3", pp, err)
	}

	// Unsupported platform zeroes the metric (Pennycook definition).
	pp, err = PerformancePortability([]PlatformEfficiency{
		{Platform: "cpu", Efficiency: 0.9, Supported: true},
		{Platform: "fpga", Supported: false},
	})
	if err != nil || pp != 0 {
		t.Errorf("PP with unsupported platform = %v, %v; want 0", pp, err)
	}

	if _, err := PerformancePortability(nil); err != ErrEmpty {
		t.Errorf("empty set err = %v", err)
	}
	if _, err := PerformancePortability([]PlatformEfficiency{{Platform: "x", Efficiency: 1.5, Supported: true}}); err == nil {
		t.Error("efficiency > 1 should error")
	}
	if _, err := PerformancePortability([]PlatformEfficiency{{Platform: "x", Efficiency: 0, Supported: true}}); err == nil {
		t.Error("efficiency 0 on supported platform should error")
	}
}

func TestPPBoundedByMinEfficiency(t *testing.T) {
	// Property: the harmonic mean lies between the minimum and maximum
	// of the per-platform efficiencies.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		effs := make([]PlatformEfficiency, n)
		lo, hi := 1.0, 0.0
		for i := range effs {
			e := 0.05 + 0.95*rng.Float64()
			effs[i] = PlatformEfficiency{Platform: "p", Efficiency: e, Supported: true}
			if e < lo {
				lo = e
			}
			if e > hi {
				hi = e
			}
		}
		pp, err := PerformancePortability(effs)
		if err != nil {
			t.Fatal(err)
		}
		if pp < lo-1e-9 || pp > hi+1e-9 {
			t.Fatalf("PP %v outside [min=%v, max=%v]", pp, lo, hi)
		}
	}
}

func TestRankPortability(t *testing.T) {
	apps := map[string][]PlatformEfficiency{
		"portable": {
			{Platform: "cpu", Efficiency: 0.8, Supported: true},
			{Platform: "gpu", Efficiency: 0.8, Supported: true},
		},
		"specialized": {
			{Platform: "cpu", Efficiency: 0.99, Supported: true},
			{Platform: "gpu", Efficiency: 0.1, Supported: true},
		},
		"broken": {
			{Platform: "cpu", Efficiency: 0.9, Supported: true},
			{Platform: "gpu", Supported: false},
		},
	}
	ranked, err := RankPortability(apps)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("got %d profiles", len(ranked))
	}
	if ranked[0].Application != "portable" {
		t.Errorf("top = %q, want portable", ranked[0].Application)
	}
	if ranked[2].Application != "broken" || ranked[2].PP != 0 {
		t.Errorf("bottom = %+v, want broken with PP 0", ranked[2])
	}
}

func TestRankPortabilityErrorPropagation(t *testing.T) {
	apps := map[string][]PlatformEfficiency{
		"bad": {{Platform: "cpu", Efficiency: 2, Supported: true}},
		"ok":  {{Platform: "cpu", Efficiency: 1, Supported: true}},
	}
	ranked, err := RankPortability(apps)
	if err == nil {
		t.Error("expected error for bad efficiency")
	}
	if len(ranked) != 1 || ranked[0].Application != "ok" {
		t.Errorf("ranked = %+v", ranked)
	}
}
