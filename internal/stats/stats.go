// Package stats provides the small statistical toolkit used by the mapping
// study engine and the substrate simulators: descriptive statistics,
// categorical distributions, histograms, divergence measures, and the
// Pennycook performance-portability metric referenced in Section 2.4 of the
// paper.
//
// Everything is pure and deterministic; no global state.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregations that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Sum returns the sum of xs using Kahan compensated summation so that long
// simulation traces do not accumulate floating-point drift.
func Sum(xs []float64) float64 {
	var sum, c float64
	for _, x := range xs {
		y := x - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	return sum
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// It returns 0 when fewer than two samples are given.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It returns ErrEmpty for empty input.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs. It returns ErrEmpty for empty input.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// GeoMean returns the geometric mean of xs. All values must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geometric mean requires positive values, got %v", x)
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// HarmonicMean returns the harmonic mean of xs. All values must be positive.
func HarmonicMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: harmonic mean requires positive values, got %v", x)
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv, nil
}

// Summary bundles the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	min, _ := Min(xs)
	max, _ := Max(xs)
	p25, _ := Percentile(xs, 25)
	med, _ := Percentile(xs, 50)
	p75, _ := Percentile(xs, 75)
	p95, _ := Percentile(xs, 95)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    min,
		P25:    p25,
		Median: med,
		P75:    p75,
		P95:    p95,
		Max:    max,
	}, nil
}

// String renders the summary on one line, suitable for experiment logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p95=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P95, s.Max)
}
