package charts

import (
	"encoding/xml"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func fig2Pie() *Pie {
	return &Pie{
		Title: "Tool distribution over research directions",
		Slices: []Slice{
			{"Interactive computing", 3},
			{"Orchestration", 7},
			{"Energy efficiency", 3},
			{"Performance portability", 6},
			{"Big Data management", 6},
		},
	}
}

func TestPieValidate(t *testing.T) {
	p := &Pie{}
	if err := p.Validate(); err != ErrNoData {
		t.Errorf("empty pie err = %v", err)
	}
	p = &Pie{Slices: []Slice{{"a", 0}}}
	if err := p.Validate(); err != ErrNoData {
		t.Errorf("zero-total pie err = %v", err)
	}
	p = &Pie{Slices: []Slice{{"a", -1}}}
	if err := p.Validate(); err == nil {
		t.Error("negative slice should error")
	}
	if err := fig2Pie().Validate(); err != nil {
		t.Errorf("fig2 pie err = %v", err)
	}
}

func TestPieASCII(t *testing.T) {
	out, err := fig2Pie().ASCII(20)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "n=25") {
		t.Errorf("missing total in output:\n%s", out)
	}
	if !strings.Contains(out, "28.0%") {
		t.Errorf("orchestration share missing:\n%s", out)
	}
	if !strings.Contains(out, "12.0%") {
		t.Errorf("interactive share missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title + 5 slices
		t.Errorf("got %d lines, want 6:\n%s", len(lines), out)
	}
	// Determinism.
	out2, _ := fig2Pie().ASCII(20)
	if out != out2 {
		t.Error("ASCII output not deterministic")
	}
}

func TestPieASCIIZeroSliceStillVisible(t *testing.T) {
	p := &Pie{Slices: []Slice{{"big", 1000}, {"tiny", 1}}}
	out, err := p.ASCII(10)
	if err != nil {
		t.Fatal(err)
	}
	// tiny must still render at least one bar cell
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "tiny") && !strings.Contains(line, "█") {
			t.Errorf("tiny slice lost its bar: %q", line)
		}
	}
}

func TestPieSVG(t *testing.T) {
	svg, err := fig2Pie().SVG(320)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Error("not a complete SVG document")
	}
	if got := strings.Count(svg, "<path"); got != 5 {
		t.Errorf("wedge count = %d, want 5", got)
	}
	if !strings.Contains(svg, "Orchestration: 7") {
		t.Error("missing tooltip for orchestration")
	}
	// Full-circle special case.
	full := &Pie{Slices: []Slice{{"all", 10}}}
	svg, err = full.SVG(128)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "<circle") {
		t.Error("single full slice should render a circle")
	}
}

func TestPieSVGEscaping(t *testing.T) {
	p := &Pie{Title: `a<b & "c"`, Slices: []Slice{{"x<y", 1}}}
	svg, err := p.SVG(128)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "x<y") || strings.Contains(svg, `a<b & "c"`) {
		t.Error("XML not escaped")
	}
	if !strings.Contains(svg, "x&lt;y") {
		t.Error("expected escaped label")
	}
}

func TestPieCSV(t *testing.T) {
	csv, err := fig2Pie().CSV()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 6 {
		t.Fatalf("csv lines = %d, want 6", len(lines))
	}
	if lines[0] != "label,value,share" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[2] != "Orchestration,7,0.2800" {
		t.Errorf("orchestration row = %q", lines[2])
	}
}

func TestCSVEscape(t *testing.T) {
	cases := map[string]string{
		"plain":     "plain",
		"a,b":       `"a,b"`,
		`say "hi"`:  `"say ""hi"""`,
		"line\ntwo": "\"line\ntwo\"",
	}
	for in, want := range cases {
		if got := csvEscape(in); got != want {
			t.Errorf("csvEscape(%q) = %q, want %q", in, got, want)
		}
	}
}

func fig3Chart() *BarChart {
	return &BarChart{
		Title:  "Research directions covered per institution",
		XLabel: "# Covered research directions",
		YLabel: "# Research institutions",
		Bars: []Bar{
			{"1", 5}, {"2", 1}, {"3", 2}, {"4", 1}, {"5", 0},
		},
	}
}

func TestBarChartASCII(t *testing.T) {
	out, err := fig3Chart().ASCII()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "# Covered research directions") {
		t.Error("missing x label")
	}
	// The tallest bar has height 5: five '#' in its column.
	if got := strings.Count(out, "#"); got != 5+1+2+1+0+2 { // bars + "# Covered"/"# Research" label hashes
		t.Errorf("hash count = %d", got)
	}
	out2, _ := fig3Chart().ASCII()
	if out != out2 {
		t.Error("not deterministic")
	}
}

func TestBarChartValidate(t *testing.T) {
	c := &BarChart{}
	if err := c.Validate(); err != ErrNoData {
		t.Errorf("empty chart err = %v", err)
	}
	c = &BarChart{Bars: []Bar{{"a", -2}}}
	if err := c.Validate(); err == nil {
		t.Error("negative bar should error")
	}
}

func TestBarChartSVG(t *testing.T) {
	svg, err := fig3Chart().SVG(480, 320)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(svg, "<rect"); got != 5 {
		t.Errorf("bar rects = %d, want 5", got)
	}
	if !strings.Contains(svg, "1: 5") {
		t.Error("missing tooltip for bucket 1")
	}
}

func TestBarChartCSV(t *testing.T) {
	csv, err := fig3Chart().CSV()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv, "1,5\n") || !strings.Contains(csv, "5,0\n") {
		t.Errorf("csv:\n%s", csv)
	}
}

func TestTableValidate(t *testing.T) {
	tb := &Table{}
	if err := tb.Validate(); err != ErrNoData {
		t.Errorf("empty table err = %v", err)
	}
	tb = &Table{Header: []string{"a", "b"}, Rows: [][]string{{"1"}}}
	if err := tb.Validate(); err == nil {
		t.Error("ragged row should error")
	}
}

func TestTableASCII(t *testing.T) {
	tb := &Table{
		Title:  "Demo",
		Header: []string{"Tool", "Direction"},
		Rows: [][]string{
			{"StreamFlow", "Orchestration"},
			{"FastFlow", "Performance portability"},
		},
	}
	out, err := tb.ASCII()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "StreamFlow") || !strings.Contains(out, "│") {
		t.Errorf("ascii table:\n%s", out)
	}
	// All table body lines equally wide.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	w := displayWidth(lines[1])
	for _, l := range lines[1:] {
		if displayWidth(l) != w {
			t.Errorf("uneven line width %d vs %d: %q", displayWidth(l), w, l)
		}
	}
}

func TestTableMarkdownAndCSV(t *testing.T) {
	tb := &Table{
		Header: []string{"Tool", "Vote"},
		Rows:   [][]string{{"A|B", "✓"}, {"C,D", ""}},
	}
	md, err := tb.Markdown()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, `A\|B`) {
		t.Error("pipe not escaped in markdown")
	}
	csv, err := tb.CSV()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv, `"C,D"`) {
		t.Error("comma cell not quoted in csv")
	}
}

func TestTableUnicodeWidths(t *testing.T) {
	tb := &Table{
		Header: []string{"x"},
		Rows:   [][]string{{"✓"}, {"longer"}},
	}
	out, err := tb.ASCII()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	w := displayWidth(lines[0])
	for _, l := range lines {
		if displayWidth(l) != w {
			t.Errorf("checkmark row broke alignment: %q", l)
		}
	}
}

// Property: any non-negative pie renders valid CSV with one line per slice.
func TestPieCSVProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		p := &Pie{}
		total := 0
		for i, v := range vals {
			p.Slices = append(p.Slices, Slice{Label: string(rune('a' + i%26)), Value: int(v)})
			total += int(v)
		}
		csv, err := p.CSV()
		if total == 0 {
			return err == ErrNoData
		}
		if err != nil {
			return false
		}
		return strings.Count(csv, "\n") == len(vals)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMatrixValidate(t *testing.T) {
	m := &Matrix{}
	if err := m.Validate(); err != ErrNoData {
		t.Errorf("empty matrix err = %v", err)
	}
	m = &Matrix{RowLabels: []string{"a"}, ColLabels: []string{"x"}, Cells: [][]bool{}}
	if err := m.Validate(); err == nil {
		t.Error("shape mismatch accepted")
	}
	m = &Matrix{RowLabels: []string{"a"}, ColLabels: []string{"x", "y"}, Cells: [][]bool{{true}}}
	if err := m.Validate(); err == nil {
		t.Error("ragged cells accepted")
	}
	m = &Matrix{RowLabels: []string{"a"}, ColLabels: []string{"x"}, Cells: [][]bool{{true}}, RowGroups: []int{0, 1}}
	if err := m.Validate(); err == nil {
		t.Error("misaligned groups accepted")
	}
}

func TestMatrixSVG(t *testing.T) {
	m := &Matrix{
		Title:     "Integration matrix",
		RowLabels: []string{"StreamFlow", "PESOS"},
		ColLabels: []string{"3.1", "3.2"},
		Cells:     [][]bool{{false, true}, {false, false}},
		RowGroups: []int{1, 2},
	}
	if m.Count() != 1 {
		t.Errorf("count = %d", m.Count())
	}
	svg, err := m.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(svg, "<circle"); got != 1 {
		t.Errorf("dots = %d, want 1", got)
	}
	if !strings.Contains(svg, "StreamFlow × 3.2") {
		t.Error("missing tooltip")
	}
	if got := strings.Count(svg, "<rect"); got != 4 {
		t.Errorf("grid cells = %d, want 4", got)
	}
}

// Labels containing XML metacharacters must round-trip through the escape
// helper: the SVG output of every renderer has to parse as well-formed XML
// (regression test for unescaped <text> content).
func TestSVGEscapesHostileLabels(t *testing.T) {
	hostile := `R&D <edge>`
	pie := &Pie{Title: `Q&A "pies" <svg>`, Slices: []Slice{
		{Label: hostile, Value: 3},
		{Label: "plain", Value: 2},
	}}
	pieSVG, err := pie.SVG(128)
	if err != nil {
		t.Fatal(err)
	}
	bar := &BarChart{Title: hostile, XLabel: "x & y", YLabel: "<count>", Bars: []Bar{
		{Label: hostile, Value: 5},
		{Label: "b", Value: 1},
	}}
	barSVG, err := bar.SVG(200, 120)
	if err != nil {
		t.Fatal(err)
	}
	matrix := &Matrix{
		Title:     hostile,
		RowLabels: []string{hostile, "row"},
		ColLabels: []string{`<col>`, "c&d"},
		Cells:     [][]bool{{true, false}, {false, true}},
	}
	matrixSVG, err := matrix.SVG()
	if err != nil {
		t.Fatal(err)
	}
	for name, svg := range map[string]string{"pie": pieSVG, "bar": barSVG, "matrix": matrixSVG} {
		if strings.Contains(svg, hostile) {
			t.Errorf("%s: hostile label emitted verbatim", name)
		}
		if !strings.Contains(svg, "R&amp;D &lt;edge&gt;") {
			t.Errorf("%s: escaped label missing:\n%s", name, svg)
		}
		dec := xml.NewDecoder(strings.NewReader(svg))
		for {
			if _, err := dec.Token(); err != nil {
				if err == io.EOF {
					break
				}
				t.Fatalf("%s: SVG is not well-formed XML: %v", name, err)
			}
		}
	}
}

func TestXMLEscape(t *testing.T) {
	if got := xmlEscape(`a&b<c>d"e`); got != `a&amp;b&lt;c&gt;d&quot;e` {
		t.Errorf("xmlEscape = %q", got)
	}
}
