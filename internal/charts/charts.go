// Package charts renders the figure and table types used by the mapping
// study — pie charts (Figures 2 and 4), bar histograms (Figure 3), and
// matrix/classification tables (Tables 1 and 2) — as ASCII text, SVG, and
// CSV, using only the standard library.
//
// The Go ecosystem has no stdlib plotting support (one of the declared
// reproduction gaps), so these renderers are deliberately small and
// deterministic: identical input always yields byte-identical output, which
// lets tests assert on the rendered artifacts.
package charts

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrNoData is returned when a chart is rendered with no usable data.
var ErrNoData = errors.New("charts: no data")

// Slice is one wedge of a pie chart.
type Slice struct {
	Label string
	Value int
}

// Pie models a pie chart such as the paper's Figures 2 and 4.
type Pie struct {
	Title  string
	Slices []Slice
}

// Total returns the sum of all slice values.
func (p *Pie) Total() int {
	t := 0
	for _, s := range p.Slices {
		t += s.Value
	}
	return t
}

// Validate checks the pie is renderable: at least one slice, no negative
// values, positive total.
func (p *Pie) Validate() error {
	if len(p.Slices) == 0 {
		return ErrNoData
	}
	for _, s := range p.Slices {
		if s.Value < 0 {
			return fmt.Errorf("charts: negative slice %q = %d", s.Label, s.Value)
		}
	}
	if p.Total() == 0 {
		return ErrNoData
	}
	return nil
}

// ASCII renders the pie as a labeled proportional bar list:
//
//	Orchestration         7 (28.0%) ██████████████
//	Big Data management   6 (24.0%) ████████████
//
// width is the maximum bar width in cells (≥ 1).
func (p *Pie) ASCII(width int) (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	if width < 1 {
		width = 40
	}
	total := p.Total()
	labelW, valueW := 0, 0
	for _, s := range p.Slices {
		if len(s.Label) > labelW {
			labelW = len(s.Label)
		}
		if w := len(fmt.Sprint(s.Value)); w > valueW {
			valueW = w
		}
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s (n=%d)\n", p.Title, total)
	}
	maxV := 0
	for _, s := range p.Slices {
		if s.Value > maxV {
			maxV = s.Value
		}
	}
	for _, s := range p.Slices {
		share := float64(s.Value) / float64(total)
		bar := 0
		if maxV > 0 {
			bar = int(float64(s.Value) / float64(maxV) * float64(width))
		}
		if s.Value > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%-*s %*d (%5.1f%%) %s\n",
			labelW, s.Label, valueW, s.Value, share*100, strings.Repeat("█", bar))
	}
	return b.String(), nil
}

// defaultPalette holds the wedge fill colors used for SVG output.
var defaultPalette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// SVG renders the pie chart as a standalone SVG document of the given pixel
// size (width = size + legend, height = size).
func (p *Pie) SVG(size int) (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	if size < 64 {
		size = 320
	}
	total := float64(p.Total())
	cx, cy := float64(size)/2, float64(size)/2
	r := float64(size)*0.5 - 8

	var b strings.Builder
	legendW := 220
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		size+legendW, size+24, size+legendW, size+24)
	if p.Title != "" {
		fmt.Fprintf(&b, `<text x="%g" y="16" text-anchor="middle" font-family="sans-serif" font-size="14">%s</text>`+"\n",
			cx, xmlEscape(p.Title))
	}
	angle := -90.0 // start at 12 o'clock like the paper's figures
	for i, s := range p.Slices {
		if s.Value == 0 {
			continue
		}
		frac := float64(s.Value) / total
		sweep := frac * 360
		color := defaultPalette[i%len(defaultPalette)]
		if frac >= 0.999999 {
			// Full-circle wedge: an arc with identical endpoints renders as
			// nothing, so emit a circle instead.
			fmt.Fprintf(&b, `<circle cx="%g" cy="%g" r="%g" fill="%s"><title>%s: %d</title></circle>`+"\n",
				cx, cy+24, r, color, xmlEscape(s.Label), s.Value)
			angle += sweep
			continue
		}
		x1, y1 := arcPoint(cx, cy+24, r, angle)
		x2, y2 := arcPoint(cx, cy+24, r, angle+sweep)
		large := 0
		if sweep > 180 {
			large = 1
		}
		fmt.Fprintf(&b, `<path d="M%g,%g L%g,%g A%g,%g 0 %d 1 %g,%g Z" fill="%s" stroke="white" stroke-width="1"><title>%s: %d (%.1f%%)</title></path>`+"\n",
			cx, cy+24, x1, y1, r, r, large, x2, y2, color, xmlEscape(s.Label), s.Value, frac*100)
		angle += sweep
	}
	// Legend.
	for i, s := range p.Slices {
		y := 32 + i*22
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="14" height="14" fill="%s"/>`+"\n",
			size+8, y, defaultPalette[i%len(defaultPalette)])
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">%s (%d)</text>`+"\n",
			size+28, y+12, xmlEscape(s.Label), s.Value)
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// CSV renders "label,value,share" rows.
func (p *Pie) CSV() (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	total := float64(p.Total())
	var b strings.Builder
	b.WriteString("label,value,share\n")
	for _, s := range p.Slices {
		fmt.Fprintf(&b, "%s,%d,%.4f\n", csvEscape(s.Label), s.Value, float64(s.Value)/total)
	}
	return b.String(), nil
}

func arcPoint(cx, cy, r, deg float64) (float64, float64) {
	rad := deg * math.Pi / 180
	return cx + r*math.Cos(rad), cy + r*math.Sin(rad)
}

var xmlReplacer = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")

// xmlEscape makes a label safe inside SVG text content and attribute
// values — the counterpart of csvEscape for the XML renderers. Every label
// interpolated into an SVG document must pass through it, or a label like
// "R&D <edge>" produces a document that is not well-formed XML.
func xmlEscape(s string) string { return xmlReplacer.Replace(s) }

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
