package charts

import (
	"fmt"
	"strings"
)

// Table models a text table such as the paper's Table 1 (tool classification)
// and Table 2 (application/tool integration matrix). Cells are free-form
// strings; the matrix variant uses "✓" and "".
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// RowGroups optionally labels contiguous row ranges (used by Table 2,
	// where rows are grouped by research direction). Keys are the starting
	// row index of each group.
	RowGroups map[int]string
}

// Validate checks that every row has the same width as the header.
func (t *Table) Validate() error {
	if len(t.Header) == 0 {
		return ErrNoData
	}
	for i, r := range t.Rows {
		if len(r) != len(t.Header) {
			return fmt.Errorf("charts: row %d has %d cells, header has %d", i, len(r), len(t.Header))
		}
	}
	return nil
}

// widths returns the display width of each column.
func (t *Table) widths() []int {
	ws := make([]int, len(t.Header))
	for i, h := range t.Header {
		ws[i] = displayWidth(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if w := displayWidth(c); w > ws[i] {
				ws[i] = w
			}
		}
	}
	return ws
}

// displayWidth counts runes, which is adequate for our ASCII + "✓" content.
func displayWidth(s string) int { return len([]rune(s)) }

func padCell(s string, w int) string {
	return s + strings.Repeat(" ", w-displayWidth(s))
}

// ASCII renders the table with box-drawing separators.
func (t *Table) ASCII() (string, error) {
	if err := t.Validate(); err != nil {
		return "", err
	}
	ws := t.widths()
	line := func(l, m, r string) string {
		parts := make([]string, len(ws))
		for i, w := range ws {
			parts[i] = strings.Repeat("─", w+2)
		}
		return l + strings.Join(parts, m) + r + "\n"
	}
	row := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = " " + padCell(c, ws[i]) + " "
		}
		return "│" + strings.Join(parts, "│") + "│\n"
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	b.WriteString(line("┌", "┬", "┐"))
	b.WriteString(row(t.Header))
	b.WriteString(line("├", "┼", "┤"))
	for i, r := range t.Rows {
		if g, ok := t.RowGroups[i]; ok && i > 0 {
			b.WriteString(line("├", "┼", "┤"))
			_ = g // group label shown via first column content
		}
		b.WriteString(row(r))
	}
	b.WriteString(line("└", "┴", "┘"))
	return b.String(), nil
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() (string, error) {
	if err := t.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, r := range t.Rows {
		cells := make([]string, len(r))
		for i, c := range r {
			cells[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	return b.String(), nil
}

// CSV renders the table as CSV with the header first.
func (t *Table) CSV() (string, error) {
	if err := t.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String(), nil
}
