package charts

import (
	"fmt"
	"strings"
)

// Bar is one bar of a bar chart / histogram.
type Bar struct {
	Label string
	Value int
}

// BarChart models a vertical bar chart such as the paper's Figure 3
// (number of research directions covered per institution).
type BarChart struct {
	Title  string
	XLabel string
	YLabel string
	Bars   []Bar
}

// Validate checks the chart is renderable.
func (c *BarChart) Validate() error {
	if len(c.Bars) == 0 {
		return ErrNoData
	}
	for _, b := range c.Bars {
		if b.Value < 0 {
			return fmt.Errorf("charts: negative bar %q = %d", b.Label, b.Value)
		}
	}
	return nil
}

// MaxValue returns the tallest bar's value.
func (c *BarChart) MaxValue() int {
	m := 0
	for _, b := range c.Bars {
		if b.Value > m {
			m = b.Value
		}
	}
	return m
}

// ASCII renders the chart as a vertical column plot with a y axis, e.g.:
//
//	5 |  #
//	4 |  #
//	3 |  #        #
//	2 |  #        #
//	1 |  #  #  #  #
//	  +---------------
//	     1  2  3  4
func (c *BarChart) ASCII() (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	maxV := c.MaxValue()
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	yW := len(fmt.Sprint(maxV))
	colW := 0
	for _, bar := range c.Bars {
		if len(bar.Label) > colW {
			colW = len(bar.Label)
		}
	}
	if colW < 2 {
		colW = 2
	}
	for level := maxV; level >= 1; level-- {
		fmt.Fprintf(&b, "%*d |", yW, level)
		for _, bar := range c.Bars {
			mark := " "
			if bar.Value >= level {
				mark = "#"
			}
			fmt.Fprintf(&b, " %*s", colW, mark)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", yW), strings.Repeat("-", (colW+1)*len(c.Bars)+1))
	fmt.Fprintf(&b, "%s  ", strings.Repeat(" ", yW))
	for _, bar := range c.Bars {
		fmt.Fprintf(&b, " %*s", colW, bar.Label)
	}
	b.WriteByte('\n')
	if c.XLabel != "" {
		fmt.Fprintf(&b, "%s   x: %s\n", strings.Repeat(" ", yW), c.XLabel)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "%s   y: %s\n", strings.Repeat(" ", yW), c.YLabel)
	}
	return b.String(), nil
}

// SVG renders the bar chart as a standalone SVG document.
func (c *BarChart) SVG(width, height int) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	if width < 100 {
		width = 480
	}
	if height < 80 {
		height = 320
	}
	maxV := c.MaxValue()
	if maxV == 0 {
		maxV = 1
	}
	marginL, marginB, marginT := 48, 48, 32
	plotW := width - marginL - 16
	plotH := height - marginB - marginT
	n := len(c.Bars)
	slot := float64(plotW) / float64(n)
	barW := slot * 0.6

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="20" text-anchor="middle" font-family="sans-serif" font-size="14">%s</text>`+"\n",
			width/2, xmlEscape(c.Title))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	// Y ticks at integer values.
	step := 1
	if maxV > 8 {
		step = (maxV + 7) / 8
	}
	for v := 0; v <= maxV; v += step {
		y := float64(marginT+plotH) - float64(v)/float64(maxV)*float64(plotH)
		fmt.Fprintf(&b, `<line x1="%d" y1="%g" x2="%d" y2="%g" stroke="#999"/>`+"\n", marginL-4, y, marginL, y)
		fmt.Fprintf(&b, `<text x="%d" y="%g" text-anchor="end" font-family="sans-serif" font-size="11">%d</text>`+"\n",
			marginL-8, y+4, v)
	}
	// Bars + x labels.
	for i, bar := range c.Bars {
		h := float64(bar.Value) / float64(maxV) * float64(plotH)
		x := float64(marginL) + float64(i)*slot + (slot-barW)/2
		y := float64(marginT+plotH) - h
		fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%g" height="%g" fill="%s"><title>%s: %d</title></rect>`+"\n",
			x, y, barW, h, defaultPalette[0], xmlEscape(bar.Label), bar.Value)
		fmt.Fprintf(&b, `<text x="%g" y="%d" text-anchor="middle" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			x+barW/2, marginT+plotH+16, xmlEscape(bar.Label))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			marginL+plotW/2, height-8, xmlEscape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%d" text-anchor="middle" font-family="sans-serif" font-size="12" transform="rotate(-90 14 %d)">%s</text>`+"\n",
			marginT+plotH/2, marginT+plotH/2, xmlEscape(c.YLabel))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// CSV renders "label,value" rows.
func (c *BarChart) CSV() (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("label,value\n")
	for _, bar := range c.Bars {
		fmt.Fprintf(&b, "%s,%d\n", csvEscape(bar.Label), bar.Value)
	}
	return b.String(), nil
}
