package charts

import (
	"fmt"
	"strings"
)

// Matrix renders a boolean incidence matrix (the paper's Table 2 layout) as
// an SVG heat/dot map: rows × columns with a filled cell per true entry.
// It complements Table, which renders the same data as text.
type Matrix struct {
	Title     string
	RowLabels []string
	ColLabels []string
	// Cells[r][c] marks an incidence.
	Cells [][]bool
	// RowGroups optionally assigns each row a group index used for row
	// coloring (e.g. the research direction). Nil = single group.
	RowGroups []int
}

// Validate checks shape consistency.
func (m *Matrix) Validate() error {
	if len(m.RowLabels) == 0 || len(m.ColLabels) == 0 {
		return ErrNoData
	}
	if len(m.Cells) != len(m.RowLabels) {
		return fmt.Errorf("charts: %d cell rows for %d labels", len(m.Cells), len(m.RowLabels))
	}
	for r, row := range m.Cells {
		if len(row) != len(m.ColLabels) {
			return fmt.Errorf("charts: row %d has %d cells, want %d", r, len(row), len(m.ColLabels))
		}
	}
	if m.RowGroups != nil && len(m.RowGroups) != len(m.RowLabels) {
		return fmt.Errorf("charts: %d row groups for %d rows", len(m.RowGroups), len(m.RowLabels))
	}
	return nil
}

// Count returns the number of true cells.
func (m *Matrix) Count() int {
	n := 0
	for _, row := range m.Cells {
		for _, c := range row {
			if c {
				n++
			}
		}
	}
	return n
}

// SVG renders the matrix as a dot map.
func (m *Matrix) SVG() (string, error) {
	if err := m.Validate(); err != nil {
		return "", err
	}
	const cell = 22
	labelW := 0
	for _, l := range m.RowLabels {
		if w := len(l) * 7; w > labelW {
			labelW = w
		}
	}
	labelW += 12
	headerH := 48
	width := labelW + len(m.ColLabels)*cell + 16
	height := headerH + len(m.RowLabels)*cell + 16

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	if m.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="16" font-family="sans-serif" font-size="13">%s</text>`+"\n",
			8, xmlEscape(m.Title))
	}
	for c, l := range m.ColLabels {
		x := labelW + c*cell + cell/2
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			x, headerH-8, xmlEscape(l))
	}
	for r, l := range m.RowLabels {
		y := headerH + r*cell
		group := 0
		if m.RowGroups != nil {
			group = m.RowGroups[r]
		}
		color := defaultPalette[group%len(defaultPalette)]
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" fill="%s">%s</text>`+"\n",
			8, y+15, color, xmlEscape(l))
		for c := range m.ColLabels {
			x := labelW + c*cell
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#ddd"/>`+"\n",
				x, y, cell, cell)
			if m.Cells[r][c] {
				fmt.Fprintf(&b, `<circle cx="%d" cy="%d" r="6" fill="%s"><title>%s × %s</title></circle>`+"\n",
					x+cell/2, y+cell/2, color, xmlEscape(l), xmlEscape(m.ColLabels[c]))
			}
		}
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}
