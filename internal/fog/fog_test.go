package fog

import (
	"context"
	"math"
	"repro/internal/rng"
	"testing"
)

func TestSensorTrace(t *testing.T) {
	tr := SensorTrace(5, 100, 0.1, rng.New(2))
	if len(tr) != 500 {
		t.Fatalf("trace = %d", len(tr))
	}
	sensors := map[string]int{}
	glitches := 0
	for _, r := range tr {
		sensors[r.Sensor]++
		if r.Value < -100 {
			glitches++
		}
	}
	if len(sensors) != 5 {
		t.Errorf("sensors = %d", len(sensors))
	}
	if glitches == 0 || glitches > 120 {
		t.Errorf("glitches = %d, want roughly 10%%", glitches)
	}
	// Deterministic under seed.
	tr2 := SensorTrace(5, 100, 0.1, rng.New(2))
	if tr2[0] != tr[0] || tr2[499] != tr[499] {
		t.Error("trace not deterministic")
	}
}

func TestNodeValidate(t *testing.T) {
	n := &Node{WindowSize: 0}
	if err := n.Validate(); err == nil {
		t.Error("zero window accepted")
	}
	n = &Node{WindowSize: 5}
	if err := n.Validate(); err != nil || n.Workers != 1 {
		t.Errorf("defaulting failed: %v, workers=%d", err, n.Workers)
	}
}

func TestRunSievesAndAggregates(t *testing.T) {
	tr := SensorTrace(4, 200, 0.05, rng.New(7))
	n := &Node{Sieve: GlitchSieve, WindowSize: 20, Workers: 4}
	res, err := n.Run(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ingested != 800 {
		t.Errorf("ingested = %d", res.Ingested)
	}
	if res.Sieved == 0 {
		t.Error("sieve dropped nothing despite glitches")
	}
	if len(res.Forwarded) == 0 {
		t.Fatal("nothing forwarded")
	}
	// Aggregates contain no glitch values and are physically plausible.
	for _, a := range res.Forwarded {
		if a.Min < -100 {
			t.Errorf("glitch leaked into aggregate: %+v", a)
		}
		if a.Mean < 10 || a.Mean > 40 {
			t.Errorf("implausible mean %v", a.Mean)
		}
		if a.Count <= 0 || a.Count > 20 {
			t.Errorf("window count = %d", a.Count)
		}
		if a.Min > a.Mean || a.Mean > a.Max {
			t.Errorf("aggregate ordering broken: %+v", a)
		}
	}
	// Conservation: forwarded counts + sieved = ingested.
	total := res.Sieved
	for _, a := range res.Forwarded {
		total += a.Count
	}
	if total != res.Ingested {
		t.Errorf("readings lost: %d of %d accounted", total, res.Ingested)
	}
}

// The SPF claim: forwarding aggregates instead of raw readings slashes
// upstream bandwidth.
func TestBandwidthReduction(t *testing.T) {
	tr := SensorTrace(10, 500, 0.02, rng.New(3))
	n := &Node{Sieve: GlitchSieve, WindowSize: 50, Workers: 2}
	res, err := n.Run(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if red := res.Reduction(); red < 10 {
		t.Errorf("bandwidth reduction = %.1fx, want > 10x for 50-reading windows", red)
	}
	if res.ForwardedBytes >= res.RawBytes {
		t.Error("forwarding cost not reduced")
	}
}

func TestRunErrors(t *testing.T) {
	n := &Node{WindowSize: 10}
	if _, err := n.Run(context.Background(), nil); err == nil {
		t.Error("empty trace accepted")
	}
	bad := &Node{WindowSize: -1}
	if _, err := bad.Run(context.Background(), SensorTrace(1, 10, 0, nil)); err == nil {
		t.Error("invalid node accepted")
	}
}

func TestAggregateMeanAccuracy(t *testing.T) {
	// Constant-value sensor: mean must be exact.
	var tr []Reading
	for i := 0; i < 40; i++ {
		tr = append(tr, Reading{Sensor: "s", Seq: i, Value: 42})
	}
	n := &Node{WindowSize: 10}
	res, err := n.Run(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Forwarded) != 4 {
		t.Fatalf("windows = %d", len(res.Forwarded))
	}
	for _, a := range res.Forwarded {
		if math.Abs(a.Mean-42) > 1e-12 || a.Min != 42 || a.Max != 42 {
			t.Errorf("aggregate = %+v", a)
		}
	}
}
