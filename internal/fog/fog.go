// Package fog implements the Sieve-Process-and-Forward pattern of the SPF
// platform (Section 2.2 of the paper): fog nodes close to smart-city
// sensors sieve raw readings (dropping irrelevant ones), process the
// survivors into compact aggregates, and forward only those aggregates to
// the cloud — trading a little on-fog computation for a large reduction in
// upstream bandwidth.
//
// The pipeline is built on the stream substrate (keyed tumbling windows),
// so the fog node is an actual concurrent dataflow, not a batch emulation.
package fog

import (
	"context"
	"errors"
	"fmt"
	prng "repro/internal/rng"

	"repro/internal/stream"
)

// Reading is one sensor observation.
type Reading struct {
	Sensor string
	Seq    int
	Value  float64
}

// Aggregate is the compact record a fog node forwards to the cloud.
type Aggregate struct {
	Sensor string
	Count  int
	Mean   float64
	Min    float64
	Max    float64
}

// ReadingBytes and AggregateBytes are the wire sizes used for bandwidth
// accounting (a reading is a small record; an aggregate is a fixed struct).
const (
	ReadingBytes   = 24
	AggregateBytes = 48
)

// Node is a configured fog node.
type Node struct {
	// Sieve keeps a reading when true (nil keeps everything).
	Sieve func(Reading) bool
	// WindowSize is the per-sensor tumbling window length in readings.
	WindowSize int
	// Workers parallelizes the processing stage.
	Workers int
}

// Validate checks the node configuration.
func (n *Node) Validate() error {
	if n.WindowSize <= 0 {
		return fmt.Errorf("fog: non-positive window %d", n.WindowSize)
	}
	if n.Workers < 1 {
		n.Workers = 1
	}
	return nil
}

// Result is the outcome of running a fog node over a reading stream.
type Result struct {
	Ingested  int
	Sieved    int // readings dropped by the sieve
	Forwarded []Aggregate
	// Bandwidth accounting.
	RawBytes       int // what forwarding every reading would cost
	ForwardedBytes int
}

// Reduction returns the bandwidth reduction factor (≥ 1).
func (r *Result) Reduction() float64 {
	if r.ForwardedBytes == 0 {
		if r.RawBytes == 0 {
			return 1
		}
		return float64(r.RawBytes)
	}
	return float64(r.RawBytes) / float64(r.ForwardedBytes)
}

// Run pushes the readings through sieve → window → aggregate and collects
// the forwarded aggregates.
func (n *Node) Run(ctx context.Context, readings []Reading) (*Result, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if len(readings) == 0 {
		return nil, errors.New("fog: no readings")
	}
	res := &Result{Ingested: len(readings), RawBytes: len(readings) * ReadingBytes}

	src := stream.FromSlice(ctx, readings)
	kept := stream.Filter(src, func(r Reading) bool {
		keep := n.Sieve == nil || n.Sieve(r)
		if !keep {
			res.Sieved++ // single consumer goroutine: no race
		}
		return keep
	})
	keyed := stream.KeyBy(ctx, kept, func(r Reading) string { return r.Sensor })
	wins := stream.TumblingCount(keyed, n.WindowSize)
	aggs := stream.AggregateWindows(wins, func(w stream.Window[Reading]) Aggregate {
		a := Aggregate{Sensor: w.Key, Count: len(w.Items)}
		for i, r := range w.Items {
			a.Mean += r.Value
			if i == 0 || r.Value < a.Min {
				a.Min = r.Value
			}
			if i == 0 || r.Value > a.Max {
				a.Max = r.Value
			}
		}
		a.Mean /= float64(a.Count)
		return a
	}, stream.Workers(n.Workers))

	out, err := aggs.Collect()
	if err != nil {
		return nil, err
	}
	res.Forwarded = out
	res.ForwardedBytes = len(out) * AggregateBytes
	return res, nil
}

// SensorTrace generates a synthetic smart-city trace: `sensors` sensors
// each emitting `perSensor` readings around per-sensor baselines, with a
// fraction of spurious outliers (the readings a sieve drops).
func SensorTrace(sensors, perSensor int, outlierFrac float64, rng *prng.Rand) []Reading {
	if rng == nil {
		rng = prng.New(1)
	}
	var out []Reading
	for s := 0; s < sensors; s++ {
		base := 20 + rng.Float64()*10
		for i := 0; i < perSensor; i++ {
			v := base + rng.NormFloat64()
			if rng.Float64() < outlierFrac {
				v = -1000 // sensor glitch
			}
			out = append(out, Reading{Sensor: fmt.Sprintf("s%03d", s), Seq: i, Value: v})
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// GlitchSieve drops physically impossible readings.
func GlitchSieve(r Reading) bool { return r.Value > -100 }
