package netlink

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestAttachDetach(t *testing.T) {
	f := NewFabric()
	ep, err := f.Attach("a")
	if err != nil || ep.Addr() != "a" {
		t.Fatalf("attach: %v", err)
	}
	if _, err := f.Attach("a"); err == nil {
		t.Error("duplicate address accepted")
	}
	if _, err := f.Attach(""); err == nil {
		t.Error("empty address accepted")
	}
	if err := f.Detach("a"); err != nil {
		t.Fatal(err)
	}
	if err := f.Detach("a"); err == nil {
		t.Error("double detach accepted")
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	f := NewFabric()
	_, _ = f.Attach("client")
	_, _ = f.Attach("server")
	id, err := f.Dial("client", "server")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Send(id, []byte("ping"), Reliable); err != nil {
		t.Fatal(err)
	}
	msgs, err := f.Recv("server")
	if err != nil || len(msgs) != 1 {
		t.Fatalf("recv: %v, %v", msgs, err)
	}
	if string(msgs[0].Payload) != "ping" || msgs[0].From != "client" || msgs[0].ConnID != id {
		t.Errorf("msg = %+v", msgs[0])
	}
	if err := f.Reply(id, []byte("pong"), Reliable); err != nil {
		t.Fatal(err)
	}
	back, _ := f.Recv("client")
	if len(back) != 1 || string(back[0].Payload) != "pong" {
		t.Errorf("reply = %+v", back)
	}
	// Inbox drained.
	again, _ := f.Recv("server")
	if len(again) != 0 {
		t.Error("inbox not drained")
	}
}

func TestDialErrors(t *testing.T) {
	f := NewFabric()
	_, _ = f.Attach("a")
	if _, err := f.Dial("a", "ghost"); err == nil {
		t.Error("dial to unknown server accepted")
	}
	if _, err := f.Dial("ghost", "a"); err == nil {
		t.Error("dial from unknown client accepted")
	}
	if err := f.Send(99, nil, Reliable); err == nil {
		t.Error("send on unknown connection accepted")
	}
	if err := f.Close(99); err == nil {
		t.Error("close of unknown connection accepted")
	}
}

func TestQoSLatency(t *testing.T) {
	f := NewFabric()
	_, _ = f.Attach("c")
	_, _ = f.Attach("s")
	id, _ := f.Dial("c", "s")
	payload := make([]byte, 1000)
	_ = f.Send(id, payload, Reliable)
	_ = f.Send(id, payload, Fast)
	msgs, _ := f.Recv("s")
	if len(msgs) != 2 {
		t.Fatal("lost messages")
	}
	if msgs[1].LatencyS >= msgs[0].LatencyS {
		t.Errorf("fast path (%v) not faster than reliable (%v)", msgs[1].LatencyS, msgs[0].LatencyS)
	}
	// Serialization included: bigger payloads take longer on both paths.
	_ = f.Send(id, make([]byte, 1e6), Fast)
	big, _ := f.Recv("s")
	if big[0].LatencyS <= msgs[1].LatencyS {
		t.Error("payload size not charged")
	}
}

func TestServerSideMigration(t *testing.T) {
	f := NewFabric()
	_, _ = f.Attach("client")
	_, _ = f.Attach("edge-1")
	_, _ = f.Attach("edge-2")
	id, _ := f.Dial("client", "edge-1")
	_ = f.Send(id, []byte("before"), Reliable)

	if err := f.BeginMigration(id); err != nil {
		t.Fatal(err)
	}
	if err := f.BeginMigration(id); err == nil {
		t.Error("double begin accepted")
	}
	// Client keeps sending during migration: buffered, not lost.
	_ = f.Send(id, []byte("during-1"), Reliable)
	_ = f.Send(id, []byte("during-2"), Fast)

	rep, err := f.CompleteMigration(id, "edge-2", 5e6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.From != "edge-1" || rep.To != "edge-2" {
		t.Errorf("report = %+v", rep)
	}
	if rep.FlushedMessages != 2 {
		t.Errorf("flushed = %d, want 2", rep.FlushedMessages)
	}
	if rep.DowntimeS <= 0 {
		t.Error("zero downtime for 5 MB state transfer")
	}

	// Connection ID unchanged; messages flow to the new address.
	if srv, _ := f.ServerOf(id); srv != "edge-2" {
		t.Errorf("server = %s", srv)
	}
	_ = f.Send(id, []byte("after"), Reliable)
	msgs, _ := f.Recv("edge-2")
	if len(msgs) != 3 { // during-1, during-2, after
		t.Fatalf("edge-2 got %d messages", len(msgs))
	}
	if string(msgs[0].Payload) != "during-1" || string(msgs[2].Payload) != "after" {
		t.Errorf("message order: %q, %q, %q", msgs[0].Payload, msgs[1].Payload, msgs[2].Payload)
	}
	old, _ := f.Recv("edge-1")
	if len(old) != 1 || string(old[0].Payload) != "before" {
		t.Errorf("edge-1 inbox = %+v", old)
	}
	if f.Migrations(id) != 1 {
		t.Errorf("migrations = %d", f.Migrations(id))
	}
}

func TestMigrationErrors(t *testing.T) {
	f := NewFabric()
	_, _ = f.Attach("c")
	_, _ = f.Attach("s")
	id, _ := f.Dial("c", "s")
	if _, err := f.CompleteMigration(id, "s", 0); err == nil {
		t.Error("complete without begin accepted")
	}
	_ = f.BeginMigration(id)
	if _, err := f.CompleteMigration(id, "ghost", 0); err == nil {
		t.Error("migration to unknown endpoint accepted")
	}
	if _, err := f.CompleteMigration(id, "s", -1); err == nil {
		t.Error("negative state size accepted")
	}
	if err := f.BeginMigration(404); err == nil {
		t.Error("begin on unknown connection accepted")
	}
}

func TestZeroLossAccounting(t *testing.T) {
	f := NewFabric()
	_, _ = f.Attach("c")
	_, _ = f.Attach("s1")
	_, _ = f.Attach("s2")
	id, _ := f.Dial("c", "s1")
	_ = f.BeginMigration(id)
	for i := 0; i < 10; i++ {
		_ = f.Send(id, []byte{byte(i)}, Reliable)
	}
	rep, _ := f.CompleteMigration(id, "s2", 0)
	if rep.FlushedMessages != 10 {
		t.Errorf("flushed = %d", rep.FlushedMessages)
	}
	delivered, dropped, buffered := f.Stats()
	if dropped != 0 {
		t.Errorf("dropped = %d, migration must be lossless", dropped)
	}
	if buffered != 10 || delivered != 10 {
		t.Errorf("buffered = %d delivered = %d", buffered, delivered)
	}
}

func TestDetachDropsMail(t *testing.T) {
	f := NewFabric()
	_, _ = f.Attach("c")
	_, _ = f.Attach("s")
	id, _ := f.Dial("c", "s")
	_ = f.Send(id, []byte("x"), Reliable)
	_ = f.Detach("s")
	_, dropped, _ := f.Stats()
	if dropped != 1 {
		t.Errorf("dropped = %d", dropped)
	}
	// Sending to a detached server reports an error and counts a drop.
	if err := f.Send(id, []byte("y"), Reliable); err == nil {
		t.Error("send to detached endpoint accepted")
	}
}

func TestConcurrentSendsSafe(t *testing.T) {
	f := NewFabric()
	_, _ = f.Attach("c")
	_, _ = f.Attach("s")
	id, _ := f.Dial("c", "s")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = f.Send(id, []byte(fmt.Sprintf("%d-%d", i, j)), Reliable)
			}
		}(i)
	}
	wg.Wait()
	msgs, _ := f.Recv("s")
	if len(msgs) != 800 {
		t.Errorf("got %d messages, want 800", len(msgs))
	}
}

func TestCloseDropsBuffered(t *testing.T) {
	f := NewFabric()
	_, _ = f.Attach("c")
	_, _ = f.Attach("s")
	id, _ := f.Dial("c", "s")
	_ = f.BeginMigration(id)
	_ = f.Send(id, []byte("x"), Reliable)
	if err := f.Close(id); err != nil {
		t.Fatal(err)
	}
	_, dropped, _ := f.Stats()
	if dropped != 1 {
		t.Errorf("dropped = %d", dropped)
	}
	if err := f.Send(id, nil, Reliable); err == nil {
		t.Error("send on closed connection accepted")
	}
}

func TestLossInjectionValidation(t *testing.T) {
	f := NewFabric()
	if err := f.EnableLoss(-0.1, 1); err == nil {
		t.Error("negative probability accepted")
	}
	if err := f.EnableLoss(1, 1); err == nil {
		t.Error("probability 1 accepted")
	}
	if err := f.EnableLoss(0.2, 1); err != nil {
		t.Error(err)
	}
}

// INSANE's QoS contract under loss: the Fast path drops frames, the
// Reliable path always delivers but pays retransmission latency.
func TestDifferentiatedQoSUnderLoss(t *testing.T) {
	f := NewFabric()
	if err := f.EnableLoss(0.3, 42); err != nil {
		t.Fatal(err)
	}
	_, _ = f.Attach("c")
	_, _ = f.Attach("s")
	id, _ := f.Dial("c", "s")

	const n = 200
	fastLost := 0
	for i := 0; i < n; i++ {
		if err := f.Send(id, []byte{1}, Fast); err != nil {
			if !errors.Is(err, ErrLost) {
				t.Fatalf("unexpected error: %v", err)
			}
			fastLost++
		}
	}
	for i := 0; i < n; i++ {
		if err := f.Send(id, []byte{2}, Reliable); err != nil {
			t.Fatalf("reliable send failed: %v", err)
		}
	}
	msgs, _ := f.Recv("s")
	fastGot, reliableGot := 0, 0
	var maxReliableLatency float64
	for _, m := range msgs {
		switch m.QoS {
		case Fast:
			fastGot++
		case Reliable:
			reliableGot++
			if m.LatencyS > maxReliableLatency {
				maxReliableLatency = m.LatencyS
			}
		}
	}
	if reliableGot != n {
		t.Errorf("reliable delivered %d of %d", reliableGot, n)
	}
	if fastGot+fastLost != n || fastLost == 0 {
		t.Errorf("fast delivered %d + lost %d != %d", fastGot, fastLost, n)
	}
	lost, retx := f.LossStats()
	if lost != fastLost {
		t.Errorf("lost counter = %d, want %d", lost, fastLost)
	}
	if retx == 0 {
		t.Error("no retransmissions recorded at 30% loss")
	}
	// Retransmitted reliable frames pay extra RTTs.
	base := f.latency(1, Reliable)
	if maxReliableLatency <= base {
		t.Errorf("max reliable latency %v shows no retransmission penalty over base %v", maxReliableLatency, base)
	}
}

func TestLossDeterministicUnderSeed(t *testing.T) {
	run := func() (int, int) {
		f := NewFabric()
		_ = f.EnableLoss(0.25, 7)
		_, _ = f.Attach("c")
		_, _ = f.Attach("s")
		id, _ := f.Dial("c", "s")
		for i := 0; i < 100; i++ {
			_ = f.Send(id, []byte{byte(i)}, Fast)
		}
		return f.LossStats()
	}
	l1, r1 := run()
	l2, r2 := run()
	if l1 != l2 || r1 != r2 {
		t.Error("loss injection not deterministic")
	}
}
