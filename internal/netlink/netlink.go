// Package netlink implements the network-abstraction substrate covering
// three surveyed tools: Nethuns' socket-independent message primitives,
// INSANE's differentiated-QoS paths, and MoveQUIC's server-side connection
// migration (Sections 2.2 and 2.4 of the paper).
//
// The fabric is an in-memory message network with explicit, simulated
// latency accounting (no wall-clock sleeps — deterministic tests). Its key
// property, borrowed from QUIC, is that connections are identified by
// connection IDs rather than endpoint addresses, which is precisely what
// makes live server-side migration transparent to clients.
package netlink

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/rng"
)

// QoSClass selects a delivery path, mirroring INSANE's differentiated
// quality levels.
type QoSClass int

// The supported QoS classes.
const (
	// Reliable is the default path: higher latency, no loss.
	Reliable QoSClass = iota
	// Fast is the low-latency path (kernel-bypass style): latency is
	// divided by the fabric's FastFactor.
	Fast
)

// Message is one delivered datagram.
type Message struct {
	From    string
	ConnID  uint64
	Payload []byte
	QoS     QoSClass
	// LatencyS is the simulated one-way delivery latency.
	LatencyS float64
}

// Endpoint is a named attachment point with an inbox.
type Endpoint struct {
	addr   string
	inbox  []Message
	closed bool
}

// Fabric is the in-memory network.
type Fabric struct {
	mu sync.Mutex

	endpoints map[string]*Endpoint
	// conns maps connection IDs to the *current* server address — the QUIC
	// trick enabling migration.
	conns  map[uint64]*conn
	nextID uint64

	// BaseLatencyS is the Reliable-path one-way latency between distinct
	// endpoints (same-endpoint delivery is free).
	BaseLatencyS float64
	// FastFactor divides latency on the Fast path (>= 1).
	FastFactor float64
	// BandwidthBps models payload serialization time.
	BandwidthBps float64

	// Stats.
	delivered int
	dropped   int
	buffered  int

	// Loss injection (loss.go).
	lossProb float64
	lossRng  *rng.Rand
	lost     int // Fast-path frames dropped by injected loss
	retx     int // Reliable-path retransmissions
}

type conn struct {
	id         uint64
	client     string
	server     string
	migrating  bool
	buf        []Message // held during migration, flushed on completion
	bytesMoved float64
	migrations int
}

// NewFabric returns a fabric with edge-like defaults: 10 ms reliable
// latency, 4× fast-path speedup, 100 MB/s.
func NewFabric() *Fabric {
	return &Fabric{
		endpoints:    map[string]*Endpoint{},
		conns:        map[uint64]*conn{},
		BaseLatencyS: 0.010,
		FastFactor:   4,
		BandwidthBps: 100e6,
	}
}

// Attach registers a new endpoint address.
func (f *Fabric) Attach(addr string) (*Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if addr == "" {
		return nil, errors.New("netlink: empty address")
	}
	if _, dup := f.endpoints[addr]; dup {
		return nil, fmt.Errorf("netlink: address %q in use", addr)
	}
	ep := &Endpoint{addr: addr}
	f.endpoints[addr] = ep
	return ep, nil
}

// Detach removes an endpoint; its undelivered messages are dropped.
func (f *Fabric) Detach(addr string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	ep, ok := f.endpoints[addr]
	if !ok {
		return fmt.Errorf("netlink: unknown endpoint %q", addr)
	}
	ep.closed = true
	f.dropped += len(ep.inbox)
	ep.inbox = nil
	delete(f.endpoints, addr)
	return nil
}

// Addr returns the endpoint's address.
func (e *Endpoint) Addr() string { return e.addr }

// latency computes the one-way delay for a payload on a QoS class.
func (f *Fabric) latency(size int, qos QoSClass) float64 {
	l := f.BaseLatencyS
	if qos == Fast && f.FastFactor > 1 {
		l /= f.FastFactor
	}
	if f.BandwidthBps > 0 {
		l += float64(size) / f.BandwidthBps
	}
	return l
}

// Dial opens a connection from client to server, returning its connection
// ID. Both endpoints must exist.
func (f *Fabric) Dial(client, server string) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.endpoints[client]; !ok {
		return 0, fmt.Errorf("netlink: unknown client %q", client)
	}
	if _, ok := f.endpoints[server]; !ok {
		return 0, fmt.Errorf("netlink: unknown server %q", server)
	}
	f.nextID++
	c := &conn{id: f.nextID, client: client, server: server}
	f.conns[c.id] = c
	return c.id, nil
}

// Close tears down a connection.
func (f *Fabric) Close(connID uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.conns[connID]
	if !ok {
		return fmt.Errorf("netlink: unknown connection %d", connID)
	}
	f.dropped += len(c.buf)
	delete(f.conns, connID)
	return nil
}

// Send delivers payload over a connection toward the server side. During a
// migration the message is buffered and flushed when the migration
// completes — zero loss, the MoveQUIC guarantee.
func (f *Fabric) Send(connID uint64, payload []byte, qos QoSClass) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.conns[connID]
	if !ok {
		return fmt.Errorf("netlink: unknown connection %d", connID)
	}
	msg := Message{
		From:     c.client,
		ConnID:   connID,
		Payload:  append([]byte(nil), payload...),
		QoS:      qos,
		LatencyS: f.latency(len(payload), qos),
	}
	if c.migrating {
		c.buf = append(c.buf, msg)
		f.buffered++
		return nil
	}
	return f.deliverLocked(c.server, msg)
}

// Reply delivers payload from the server side back to the client.
func (f *Fabric) Reply(connID uint64, payload []byte, qos QoSClass) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.conns[connID]
	if !ok {
		return fmt.Errorf("netlink: unknown connection %d", connID)
	}
	msg := Message{
		From:     c.server,
		ConnID:   connID,
		Payload:  append([]byte(nil), payload...),
		QoS:      qos,
		LatencyS: f.latency(len(payload), qos),
	}
	return f.deliverLocked(c.client, msg)
}

// ErrLost marks a Fast-path frame dropped by injected loss: the fast path
// does not retransmit (that is its contract).
var ErrLost = errors.New("netlink: frame lost on fast path")

func (f *Fabric) deliverLocked(addr string, msg Message) error {
	ep, ok := f.endpoints[addr]
	if !ok || ep.closed {
		f.dropped++
		return fmt.Errorf("netlink: endpoint %q gone, message dropped", addr)
	}
	delivered, extra, attempts := f.sendAttempts(msg.QoS)
	f.retx += attempts - 1
	if !delivered {
		if msg.QoS == Fast {
			f.lost++
			return ErrLost
		}
		f.dropped++
		return fmt.Errorf("netlink: reliable delivery to %q gave up after %d attempts", addr, attempts)
	}
	msg.LatencyS += extra
	ep.inbox = append(ep.inbox, msg)
	f.delivered++
	return nil
}

// Recv drains and returns the endpoint's inbox.
func (f *Fabric) Recv(addr string) ([]Message, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ep, ok := f.endpoints[addr]
	if !ok {
		return nil, fmt.Errorf("netlink: unknown endpoint %q", addr)
	}
	out := ep.inbox
	ep.inbox = nil
	return out, nil
}

// MigrationReport quantifies one server-side migration.
type MigrationReport struct {
	ConnID     uint64
	From, To   string
	StateBytes float64
	// DowntimeS is the simulated service freeze: state transfer time over
	// the fabric bandwidth plus one base latency for the path switch.
	DowntimeS float64
	// FlushedMessages is how many client messages were buffered during the
	// migration and delivered to the new address afterwards.
	FlushedMessages int
}

// BeginMigration freezes a connection's server side in preparation for
// moving it to a new address. Client sends buffer until CompleteMigration.
func (f *Fabric) BeginMigration(connID uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.conns[connID]
	if !ok {
		return fmt.Errorf("netlink: unknown connection %d", connID)
	}
	if c.migrating {
		return fmt.Errorf("netlink: connection %d already migrating", connID)
	}
	c.migrating = true
	return nil
}

// CompleteMigration moves the server side of a connection to newAddr,
// transferring stateBytes of service state, and flushes buffered messages
// to the new address. The connection ID is unchanged — clients never notice
// beyond the downtime.
func (f *Fabric) CompleteMigration(connID uint64, newAddr string, stateBytes float64) (*MigrationReport, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.conns[connID]
	if !ok {
		return nil, fmt.Errorf("netlink: unknown connection %d", connID)
	}
	if !c.migrating {
		return nil, fmt.Errorf("netlink: connection %d not migrating", connID)
	}
	if _, ok := f.endpoints[newAddr]; !ok {
		return nil, fmt.Errorf("netlink: unknown endpoint %q", newAddr)
	}
	if stateBytes < 0 {
		return nil, fmt.Errorf("netlink: negative state size %v", stateBytes)
	}
	rep := &MigrationReport{
		ConnID:     connID,
		From:       c.server,
		To:         newAddr,
		StateBytes: stateBytes,
		DowntimeS:  f.BaseLatencyS,
	}
	if f.BandwidthBps > 0 {
		rep.DowntimeS += stateBytes / f.BandwidthBps
	}
	c.server = newAddr
	c.migrating = false
	c.bytesMoved += stateBytes
	c.migrations++
	for _, m := range c.buf {
		if err := f.deliverLocked(newAddr, m); err != nil {
			return nil, err
		}
		rep.FlushedMessages++
	}
	c.buf = nil
	return rep, nil
}

// ServerOf returns the current server address of a connection.
func (f *Fabric) ServerOf(connID uint64) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.conns[connID]
	if !ok {
		return "", fmt.Errorf("netlink: unknown connection %d", connID)
	}
	return c.server, nil
}

// Migrations returns how many times a connection's server side has moved.
func (f *Fabric) Migrations(connID uint64) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.conns[connID]; ok {
		return c.migrations
	}
	return 0
}

// Stats returns delivered / dropped / buffered counters.
func (f *Fabric) Stats() (delivered, dropped, buffered int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.delivered, f.dropped, f.buffered
}
