package netlink

import (
	"fmt"

	"repro/internal/rng"
)

// Loss injection: INSANE's differentiated QoS becomes observable under an
// unreliable network. The Fast path trades reliability for latency — lossy
// links drop its frames — while the Reliable path retransmits until
// delivery, paying one extra RTT per attempt.

// EnableLoss turns on frame loss with the given probability (in [0,1)) and
// a deterministic seed. Loss applies per transmission attempt.
func (f *Fabric) EnableLoss(prob float64, seed int64) error {
	if prob < 0 || prob >= 1 {
		return fmt.Errorf("netlink: loss probability %v outside [0,1)", prob)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lossProb = prob
	f.lossRng = rng.New(seed)
	return nil
}

// lossState is embedded in Fabric (fields declared in netlink.go via this
// file's interface — Go has no partial structs, so the fields live on the
// Fabric type; see below).

// sendAttempts simulates transmissions under loss for one message:
//   - Fast: one attempt; if it drops, the message is lost (counted).
//   - Reliable: retransmit until delivered; each retry adds a full
//     BaseLatencyS round trip to the message's effective latency.
//
// It returns (delivered, extraLatency, attempts).
func (f *Fabric) sendAttempts(qos QoSClass) (bool, float64, int) {
	if f.lossRng == nil || f.lossProb == 0 {
		return true, 0, 1
	}
	attempts := 1
	for f.lossRng.Float64() < f.lossProb {
		if qos == Fast {
			return false, 0, attempts
		}
		attempts++
		if attempts > 64 {
			// Pathological loss; give up to bound simulation time.
			return false, 0, attempts
		}
	}
	extra := float64(attempts-1) * 2 * f.BaseLatencyS
	return true, extra, attempts
}

// LossStats reports loss-injection counters.
func (f *Fabric) LossStats() (lost, retransmissions int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lost, f.retx
}
