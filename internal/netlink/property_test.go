package netlink

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// Model-based property test: a reference model tracks what each endpoint's
// inbox must contain after a random sequence of sends, migrations, replies
// and receives (without loss). The fabric must agree with the model at
// every Recv.
func TestFabricMatchesReferenceModel(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		f := NewFabric()
		endpoints := []string{"c", "s1", "s2", "s3"}
		for _, ep := range endpoints {
			if _, err := f.Attach(ep); err != nil {
				t.Fatal(err)
			}
		}
		conn, err := f.Dial("c", "s1")
		if err != nil {
			t.Fatal(err)
		}

		// Reference model.
		inbox := map[string][]string{}
		server := "s1"
		migrating := false
		var buffered []string
		seq := 0

		for op := 0; op < 200; op++ {
			switch rng.Intn(5) {
			case 0, 1: // send
				payload := fmt.Sprintf("m%d", seq)
				seq++
				if err := f.Send(conn, []byte(payload), Reliable); err != nil {
					t.Fatalf("trial %d op %d: send: %v", trial, op, err)
				}
				if migrating {
					buffered = append(buffered, payload)
				} else {
					inbox[server] = append(inbox[server], payload)
				}
			case 2: // reply
				payload := fmt.Sprintf("r%d", seq)
				seq++
				if err := f.Reply(conn, []byte(payload), Fast); err != nil {
					t.Fatalf("reply: %v", err)
				}
				inbox["c"] = append(inbox["c"], payload)
			case 3: // migration step
				if !migrating {
					if err := f.BeginMigration(conn); err != nil {
						t.Fatalf("begin: %v", err)
					}
					migrating = true
				} else {
					target := endpoints[1+rng.Intn(3)]
					if _, err := f.CompleteMigration(conn, target, float64(rng.Intn(1000))); err != nil {
						t.Fatalf("complete: %v", err)
					}
					server = target
					inbox[server] = append(inbox[server], buffered...)
					buffered = nil
					migrating = false
				}
			case 4: // recv and compare against the model
				ep := endpoints[rng.Intn(len(endpoints))]
				msgs, err := f.Recv(ep)
				if err != nil {
					t.Fatalf("recv: %v", err)
				}
				want := inbox[ep]
				if len(msgs) != len(want) {
					t.Fatalf("trial %d op %d: endpoint %s has %d messages, model says %d",
						trial, op, ep, len(msgs), len(want))
				}
				for i := range want {
					if string(msgs[i].Payload) != want[i] {
						t.Fatalf("endpoint %s message %d = %q, model says %q",
							ep, i, msgs[i].Payload, want[i])
					}
				}
				inbox[ep] = nil
			}
		}
		// No message may have been dropped in a loss-free run.
		_, dropped, _ := f.Stats()
		if dropped != 0 {
			t.Fatalf("trial %d: dropped = %d in loss-free run", trial, dropped)
		}
	}
}

// Conservation under loss: delivered + lost equals attempted fast sends;
// reliable sends always deliver.
func TestLossConservationProperty(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		f := NewFabric()
		if err := f.EnableLoss(0.1+0.5*rng.Float64(), int64(trial)); err != nil {
			t.Fatal(err)
		}
		_, _ = f.Attach("c")
		_, _ = f.Attach("s")
		conn, _ := f.Dial("c", "s")
		fastSent, reliableSent, fastLost := 0, 0, 0
		for op := 0; op < 300; op++ {
			if rng.Intn(2) == 0 {
				fastSent++
				if err := f.Send(conn, []byte{1}, Fast); err != nil {
					if !errors.Is(err, ErrLost) {
						t.Fatal(err)
					}
					fastLost++
				}
			} else {
				reliableSent++
				if err := f.Send(conn, []byte{2}, Reliable); err != nil {
					t.Fatalf("reliable send failed: %v", err)
				}
			}
		}
		msgs, _ := f.Recv("s")
		if len(msgs) != fastSent-fastLost+reliableSent {
			t.Fatalf("trial %d: delivered %d, want %d", trial, len(msgs), fastSent-fastLost+reliableSent)
		}
		lost, _ := f.LossStats()
		if lost != fastLost {
			t.Fatalf("lost counter %d vs observed %d", lost, fastLost)
		}
	}
}
