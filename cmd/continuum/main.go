// Command continuum runs Computing-Continuum what-if scenarios from the
// command line: FaaS workloads under different schedulers, VM fleets under
// different energy policies, and coupled-application I/O modes.
//
// Usage:
//
//	continuum -scenario faas -rate 20 -horizon 60
//	continuum -scenario energy -vms 12
//	continuum -scenario io -chunks 200
//	continuum -list
//	continuum -run continuum/faas
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/capio"
	"repro/internal/clock"
	"repro/internal/continuum"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/faas"
	"repro/internal/orchestrator"
	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/workflow"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "continuum:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("continuum", flag.ContinueOnError)
	var (
		scenario = fs.String("scenario", "faas", "scenario: faas, energy, io")
		rate     = fs.Float64("rate", 20, "faas: aggregate invocation rate (1/s)")
		horizon  = fs.Float64("horizon", 60, "faas: trace horizon (s)")
		vms      = fs.Int("vms", 12, "energy: fleet size")
		chunks   = fs.Int("chunks", 200, "io: producer chunk count")
		seed     = fs.Int64("seed", 1, "workload seed")
		metrics  = fs.Bool("metrics", false, "faas: append Prometheus-text metrics after the report")
		listExp  = fs.Bool("list", false, "list every registered experiment and exit")
		runExp   = fs.String("run", "", "run one registered experiment by name (\"all\" = whole registry)")
		jsonOut  = fs.Bool("json", false, "with -run: emit the experiment Result as JSON")
		workers  = fs.Int("workers", 0, "with -run: bound the experiment worker pool (0 = default; results identical for any value)")
		cacheDir = fs.String("cache", "", "with -run: content-addressed store directory for experiment memoization")
		packDir  = fs.String("runpack", "", "with -run: seal each executed experiment into a signed runpack under this directory (cmd/runpack verifies)")
		cpuProf  = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = fs.String("memprofile", "", "write a pprof allocation profile after the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "continuum: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap so the profile shows retained allocations
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "continuum: memprofile:", err)
			}
		}()
	}
	cliOpts := experiments.CLIOptions{
		List: *listExp, Run: *runExp, JSON: *jsonOut,
		Seed: *seed, Workers: *workers, Cache: *cacheDir, Runpack: *packDir,
	}
	if cliOpts.Active() {
		reg, err := experiments.Default()
		if err != nil {
			return err
		}
		return experiments.RunCLI(reg, cliOpts, out)
	}
	switch *scenario {
	case "faas":
		return faasScenario(out, *rate, *horizon, *seed, *metrics)
	case "energy":
		return energyScenario(out, *vms)
	case "io":
		return ioScenario(out, *chunks)
	case "faults":
		return faultsScenario(out, *seed)
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
}

// faultsScenario sweeps step-failure probabilities and reports the makespan
// inflation retries cause (the fault-tolerance what-if). Candidates score
// concurrently on the par worker pool with one seed-split RNG each, so the
// table is identical for any pool size.
func faultsScenario(out io.Writer, seed int64) error {
	mkWf := func() *workflow.Workflow {
		wf := workflow.New("pipeline")
		wf.MustAdd(workflow.Step{ID: "ingest", WorkGFlop: 50, OutputBytes: 100e6})
		var shards []string
		for i := 0; i < 8; i++ {
			id := fmt.Sprintf("shard-%d", i)
			wf.MustAdd(workflow.Step{ID: id, After: []string{"ingest"}, WorkGFlop: 400, Cores: 4, OutputBytes: 20e6})
			shards = append(shards, id)
		}
		wf.MustAdd(workflow.Step{ID: "train", After: shards, WorkGFlop: 3000, Cores: 16, OutputBytes: 10e6})
		wf.MustAdd(workflow.Step{ID: "publish", After: []string{"train"}, WorkGFlop: 10})
		return wf
	}
	fmt.Fprintln(out, "Fault-tolerance scenario: step failure probability vs makespan (retry on same node)")
	fmt.Fprintf(out, "%-8s %10s %10s\n", "p(fail)", "makespan", "retries")
	pts, err := orchestrator.SweepFaults(mkWf, continuum.Testbed, orchestrator.DataLocal{},
		[]float64{0, 0.1, 0.3, 0.5}, 50, seed)
	if err != nil {
		return err
	}
	for _, pt := range pts {
		fmt.Fprintf(out, "%-8.1f %9.2fs %10d\n", pt.FailureProb, pt.Stats.Schedule.Makespan, pt.Stats.Failures)
	}
	return nil
}

func faasScenario(out io.Writer, rate, horizon float64, seed int64, metrics bool) error {
	fns := []faas.Function{
		{Name: "detect", WorkGFlop: 0.2, Class: faas.LowLatency, DeadlineS: 0.8, StateBytes: 1e6},
		{Name: "train", WorkGFlop: 50, Class: faas.Batch, DeadlineS: 10, StateBytes: 50e6},
	}
	trace := faas.PoissonTrace(fns, rate, horizon, rng.New(seed))
	var opts []faas.CompareOption
	var reg *telemetry.Registry
	if metrics {
		// A Sim clock keeps the exposition free of wall-clock noise: the
		// output depends only on the workload, so identical flags give
		// byte-identical metrics.
		reg = telemetry.NewWithClock(clock.NewSim(seed))
		opts = append(opts, faas.WithMetrics(reg))
	}
	results, names, err := faas.CompareSchedulers(fns, trace, continuum.EdgeCloudTestbed,
		[]faas.Scheduler{faas.EdgeFirst{}, faas.CloudOnly{}, faas.EnergyAware{}}, opts...)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "FaaS scenario: %d invocations at %.0f/s over %.0fs\n\n", len(trace), rate, horizon)
	fmt.Fprintf(out, "%-14s %10s %10s %10s %8s %8s %10s\n",
		"scheduler", "p50", "p95", "offload", "cold", "miss", "energy")
	for _, n := range names {
		r := results[n]
		s, err := r.LatencySummary()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-14s %9.3fs %9.3fs %9.1f%% %8d %8d %9.0fJ\n",
			n, s.Median, s.P95, r.OffloadRate()*100, r.ColdStarts, r.Violations, r.EnergyJ)
	}
	if reg != nil {
		fmt.Fprintf(out, "\n# metrics (Prometheus text exposition)\n%s", reg.PromText())
	}
	return nil
}

func energyScenario(out io.Writer, n int) error {
	vms := make([]energy.VM, n)
	for i := range vms {
		vms[i] = energy.VM{ID: fmt.Sprintf("vm-%02d", i), Cores: 4, MinGFLOPSPerCore: 5, DurationS: 3600}
	}
	fmt.Fprintf(out, "Energy scenario: %d VMs (4 cores each) on the 3-tier testbed\n\n", n)
	fmt.Fprintf(out, "%-14s %7s %10s %12s %10s\n", "placer", "nodes", "power", "energy(1h)", "QoS-viol")
	for _, p := range []energy.Placer{energy.Consolidating{}, energy.Spreading{}} {
		inf := continuum.Testbed()
		a, err := p.Place(vms, inf)
		if err != nil {
			return err
		}
		rep, err := energy.Evaluate(p.Name(), vms, a, inf)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-14s %7d %9.0fW %11.0fJ %10d\n",
			rep.Placer, rep.ActiveNodes, rep.TotalPowerW, rep.EnergyJ, rep.QoSViolations)
	}
	return nil
}

func ioScenario(out io.Writer, chunks int) error {
	m := capio.CouplingModel{Chunks: chunks, ProduceS: 0.5, TransferS: 0.1, ConsumeS: 0.4}
	staged, err := m.StagedMakespan()
	if err != nil {
		return err
	}
	streamed, err := m.StreamedMakespan()
	if err != nil {
		return err
	}
	overlap, err := m.Overlap()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "I/O coupling scenario (FLASH+SYGMA style): %d chunks, produce 0.5s, transfer 0.1s, consume 0.4s\n\n", chunks)
	fmt.Fprintf(out, "staged  (wait for all files):  %8.1fs\n", staged)
	fmt.Fprintf(out, "streamed (CAPIO-style):        %8.1fs\n", streamed)
	fmt.Fprintf(out, "overlap speedup:               %8.2fx\n", overlap)
	return nil
}
