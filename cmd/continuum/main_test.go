package main

import (
	"strings"
	"testing"
)

func TestFaaSScenario(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "faas", "-rate", "10", "-horizon", "20"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"edge-first", "cloud-only", "energy-aware", "p50"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestEnergyScenario(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "energy", "-vms", "6"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "consolidating") || !strings.Contains(out, "spreading") {
		t.Errorf("energy output:\n%s", out)
	}
}

func TestIOScenario(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "io", "-chunks", "50"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "staged") || !strings.Contains(out, "overlap speedup") {
		t.Errorf("io output:\n%s", out)
	}
}

func TestUnknownScenario(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "quantum"}, &sb); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestFaultsScenario(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "faults"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "p(fail)") || !strings.Contains(out, "0.5") {
		t.Errorf("faults output:\n%s", out)
	}
}
