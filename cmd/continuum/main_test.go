package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestFaaSScenario(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "faas", "-rate", "10", "-horizon", "20"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"edge-first", "cloud-only", "energy-aware", "p50"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestEnergyScenario(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "energy", "-vms", "6"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "consolidating") || !strings.Contains(out, "spreading") {
		t.Errorf("energy output:\n%s", out)
	}
}

func TestIOScenario(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "io", "-chunks", "50"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "staged") || !strings.Contains(out, "overlap speedup") {
		t.Errorf("io output:\n%s", out)
	}
}

func TestUnknownScenario(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "quantum"}, &sb); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestFaultsScenario(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "faults"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "p(fail)") || !strings.Contains(out, "0.5") {
		t.Errorf("faults output:\n%s", out)
	}
}

// -metrics appends a Prometheus exposition, namespaced per scheduler, and
// the whole report — table plus metrics — is byte-identical across runs.
func TestFaaSScenarioMetrics(t *testing.T) {
	render := func() string {
		var sb strings.Builder
		if err := run([]string{"-scenario", "faas", "-rate", "10", "-horizon", "20", "-metrics"}, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	out := render()
	for _, want := range []string{
		"# metrics (Prometheus text exposition)",
		"# TYPE edge_first_faas_invocations counter",
		"# TYPE cloud_only_faas_response_s summary",
		`energy_aware_faas_response_s{quantile="0.95"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if again := render(); again != out {
		t.Error("-metrics output differs across identical runs")
	}
	var plain strings.Builder
	if err := run([]string{"-scenario", "faas", "-rate", "10", "-horizon", "20"}, &plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "# metrics") {
		t.Error("metrics printed without the flag")
	}
}

// The registry-driven flags mirror smsreport's: one shared assembly backs
// -list and -run in every CLI.
func TestRegistryFlags(t *testing.T) {
	var list strings.Builder
	if err := run([]string{"-list"}, &list); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"continuum/faas", "continuum/energy", "scenario/3.4/liqo",
		fmt.Sprintf("%d experiments", experiments.ExpectedExperiments)} {
		if !strings.Contains(list.String(), want) {
			t.Errorf("-list missing %q", want)
		}
	}
	var a, b strings.Builder
	if err := run([]string{"-run", "continuum/faas", "-seed", "7"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", "continuum/faas", "-seed", "7", "-workers", "8"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("-run output depends on the worker count")
	}
	if !strings.Contains(a.String(), "energy-aware") {
		t.Errorf("faas experiment table malformed:\n%s", a.String())
	}
}

// The profiling flags must leave valid, non-empty pprof files behind.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var sb strings.Builder
	if err := run([]string{"-scenario", "faults", "-cpuprofile", cpu, "-memprofile", mem}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}
