package main

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/runpack"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(args, &out)
	return out.String(), err
}

func TestPackVerifyRegressRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out, err := runCLI(t, "pack", "-run", "continuum/io", "-seed", "1", "-out", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "packed continuum/io") {
		t.Fatalf("pack output: %s", out)
	}
	packDir := filepath.Join(dir, "continuum__io")

	if out, err = runCLI(t, "verify", packDir); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !strings.Contains(out, "ok continuum/io") {
		t.Fatalf("verify output: %s", out)
	}

	out, err = runCLI(t, "regress", "-workers", "1,4,8", dir)
	if err != nil {
		t.Fatalf("regress: %v\n%s", err, out)
	}
	for _, want := range []string{"workers=1 ok", "workers=4 ok", "workers=8 ok"} {
		if !strings.Contains(out, want) {
			t.Fatalf("regress output missing %q:\n%s", want, out)
		}
	}

	if out, err = runCLI(t, "diff", packDir, packDir); err != nil {
		t.Fatalf("self-diff: %v", err)
	} else if !strings.Contains(out, "identical") {
		t.Fatalf("self-diff output: %s", out)
	}
}

func TestVerifyRejectsTamperedManifest(t *testing.T) {
	dir := t.TempDir()
	if _, err := runCLI(t, "pack", "-run", "continuum/io", "-seed", "1", "-out", dir); err != nil {
		t.Fatal(err)
	}
	mf := filepath.Join(dir, "continuum__io", "manifest.json")
	data, err := os.ReadFile(mf)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(mf, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "verify", filepath.Join(dir, "continuum__io")); err == nil {
		t.Fatal("verify accepted a tampered manifest")
	}
}

func TestVerifyRejectsFlippedBlobByte(t *testing.T) {
	dir := t.TempDir()
	if _, err := runCLI(t, "pack", "-run", "continuum/io", "-seed", "1", "-out", dir); err != nil {
		t.Fatal(err)
	}
	// Flip one byte of the single artifact blob, wherever the store put it.
	var blob string
	blobRoot := filepath.Join(dir, "continuum__io", "blobs")
	err := filepath.WalkDir(blobRoot, func(path string, d fs.DirEntry, err error) error {
		// DiskStore shards objects as blobs/objects/<2-hex>/<62-hex>.
		if err == nil && !d.IsDir() && len(d.Name()) == 62 {
			blob = path
		}
		return err
	})
	if err != nil || blob == "" {
		t.Fatalf("no blob found under %s: %v", blobRoot, err)
	}
	data, err := os.ReadFile(blob)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0x01
	if err := os.WriteFile(blob, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, verr := runCLI(t, "verify", filepath.Join(dir, "continuum__io"))
	if verr == nil {
		t.Fatal("verify accepted a flipped artifact byte")
	}
	// The regress gate refuses to gate on a corrupt golden.
	if _, err := runCLI(t, "regress", dir); err == nil {
		t.Fatal("regress accepted a corrupt golden")
	}
}

func TestDiffReportsMaterialDrift(t *testing.T) {
	a, b := t.TempDir(), t.TempDir()
	if _, err := runCLI(t, "pack", "-run", "continuum/faas", "-seed", "1", "-out", a); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "pack", "-run", "continuum/faas", "-seed", "2", "-out", b); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "diff", filepath.Join(a, "continuum__faas"), filepath.Join(b, "continuum__faas"))
	if err == nil {
		t.Fatal("diff of different seeds reported no material drift")
	}
	if !strings.Contains(out, "seed") || !strings.Contains(out, "artifact") {
		t.Fatalf("diff output does not name the drifted fields:\n%s", out)
	}
}

func TestEd25519PackVerifiesWithPublicKeyOnly(t *testing.T) {
	dir := t.TempDir()
	if _, err := runCLI(t, "pack", "-run", "continuum/io", "-seed", "1", "-out", dir,
		"-ed25519", "release signing material"); err != nil {
		t.Fatal(err)
	}
	pub := runpack.NewEd25519Key([]byte("release signing material")).Public()
	packDir := filepath.Join(dir, "continuum__io")
	if _, err := runCLI(t, "verify", "-pubkey", pub, packDir); err != nil {
		t.Fatalf("public-key verify: %v", err)
	}
	// The dev key (wrong algo) must not verify it, nor a wrong public key.
	if _, err := runCLI(t, "verify", packDir); err == nil {
		t.Fatal("dev-key verify accepted an ed25519 pack")
	}
	wrong := runpack.NewEd25519Key([]byte("other")).Public()
	if _, err := runCLI(t, "verify", "-pubkey", wrong, packDir); err == nil {
		t.Fatal("wrong public key accepted")
	}
	// Integrity-only mode still checks digests.
	if _, err := runCLI(t, "verify", "-insecure", packDir); err != nil {
		t.Fatalf("insecure verify: %v", err)
	}
}

func TestBadInvocations(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"frobnicate"},
		{"pack"},
		{"verify"},
		{"diff", "only-one"},
		{"regress"},
		{"regress", "-workers", "0", t.TempDir()},
		{"pack", "-run", "x", "-hmac", "a", "-ed25519", "b"},
	} {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
