// Command runpack packs, verifies, diffs, and regresses sealed run
// artifacts (internal/runpack) over the repository's experiment registry.
//
// Usage:
//
//	runpack pack -run continuum/io -seed 1 -out goldens/runpacks
//	runpack pack -run all -out packs/             # seal the whole registry
//	runpack verify goldens/runpacks/continuum__io # dev key by default
//	runpack verify -pubkey <hex> bundle.json      # offline, public key only
//	runpack diff goldens/runpacks/continuum__io packs/continuum__io
//	runpack regress -workers 1,4,8 goldens/runpacks
//
// regress is the reproducibility gate: every golden pack's Spec is
// re-executed from its manifest (same root seed, no cache) at each worker
// count, and any byte of material drift — artifact bytes, metrics,
// fingerprint, seeds — fails the command. Provenance-only drift (cache
// state, engine version) is reported but tolerated.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/clock"
	"repro/internal/exp"
	"repro/internal/experiments"
	"repro/internal/par"
	"repro/internal/runpack"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "runpack:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: runpack <pack|verify|diff|regress> [flags] [args]")
	}
	switch args[0] {
	case "pack":
		return packCmd(args[1:], out)
	case "verify":
		return verifyCmd(args[1:], out)
	case "diff":
		return diffCmd(args[1:], out)
	case "regress":
		return regressCmd(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (pack, verify, diff, regress)", args[0])
	}
}

// keyFlags registers the shared signing/verification key flags on fs.
type keyFlags struct {
	hmac     *string
	ed25519  *string
	pubkey   *string
	insecure *bool
}

func addKeyFlags(fs *flag.FlagSet, withVerifyOnly bool) keyFlags {
	k := keyFlags{
		hmac:    fs.String("hmac", "", "sign/verify with HMAC-SHA256 over this secret (default: the documented dev key)"),
		ed25519: fs.String("ed25519", "", "sign/verify with an ed25519 key derived from this material"),
	}
	if withVerifyOnly {
		k.pubkey = fs.String("pubkey", "", "verify an ed25519 signature with only this hex public key")
		k.insecure = fs.Bool("insecure", false, "skip signature verification (integrity-only: digests still checked)")
	}
	return k
}

// signingKey resolves the key flags to a signing key.
func (k keyFlags) signingKey() (runpack.Key, error) {
	switch {
	case *k.hmac != "" && *k.ed25519 != "":
		return runpack.Key{}, fmt.Errorf("-hmac and -ed25519 are mutually exclusive")
	case *k.hmac != "":
		return runpack.NewHMACKey([]byte(*k.hmac)), nil
	case *k.ed25519 != "":
		return runpack.NewEd25519Key([]byte(*k.ed25519)), nil
	default:
		return runpack.DevKey(), nil
	}
}

// verifyOpts resolves the key flags to verification options.
func (k keyFlags) verifyOpts() (runpack.VerifyOpts, error) {
	if k.pubkey != nil && *k.pubkey != "" {
		if *k.hmac != "" || *k.ed25519 != "" {
			return runpack.VerifyOpts{}, fmt.Errorf("-pubkey excludes -hmac/-ed25519")
		}
		return runpack.VerifyOpts{PubKey: *k.pubkey}, nil
	}
	if k.insecure != nil && *k.insecure {
		return runpack.VerifyOpts{SkipSignature: true}, nil
	}
	key, err := k.signingKey()
	if err != nil {
		return runpack.VerifyOpts{}, err
	}
	return runpack.VerifyOpts{Key: &key}, nil
}

// loadPack reads a pack from a WriteDir directory or an EncodeBundle file.
func loadPack(path string) (*runpack.Pack, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		return runpack.ReadDir(path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return runpack.DecodeBundle(data)
}

// regressEnv builds the storeless Env a manifest's Spec re-executes under:
// everything derives from the manifest's root seed, so a conforming
// experiment must reproduce the sealed bytes at any worker count.
func regressEnv(rootSeed int64, workers int) *exp.Env {
	sim := clock.NewSim(rootSeed)
	env := &exp.Env{Seed: rootSeed, Clock: sim, Metrics: telemetry.NewWithClock(sim)}
	if workers > 0 {
		env.Par = []par.Option{par.Workers(workers)}
	}
	return env
}

func packCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("runpack pack", flag.ContinueOnError)
	name := fs.String("run", "", "experiment to seal (\"all\" = whole registry)")
	seed := fs.Int64("seed", 1, "root Env seed")
	outDir := fs.String("out", "runpacks", "directory to write pack subdirectories under")
	keys := addKeyFlags(fs, false)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("pack: -run NAME is required (see smsreport -list)")
	}
	key, err := keys.signingKey()
	if err != nil {
		return err
	}
	reg, err := experiments.Default()
	if err != nil {
		return err
	}
	names := []string{*name}
	if *name == "all" {
		names = reg.Names()
	}
	env := regressEnv(*seed, 0)
	for _, n := range names {
		_, pack, err := reg.RunPacked(context.Background(), env, n, key)
		if err != nil {
			return err
		}
		dir := filepath.Join(*outDir, experiments.PackDirName(n))
		if err := pack.WriteDir(dir); err != nil {
			return err
		}
		fmt.Fprintf(out, "packed %-34s %s  %s\n", n, pack.ID[:12], dir)
	}
	return nil
}

func verifyCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("runpack verify", flag.ContinueOnError)
	keys := addKeyFlags(fs, true)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("verify: need at least one pack directory or bundle file")
	}
	opts, err := keys.verifyOpts()
	if err != nil {
		return err
	}
	for _, path := range fs.Args() {
		pack, err := loadPack(path)
		if err != nil {
			return err
		}
		if err := pack.Verify(opts); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(out, "ok %-34s %s\n", pack.Manifest.Experiment, pack.ID[:12])
	}
	return nil
}

func diffCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("runpack diff", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff: need exactly two packs (reference, candidate)")
	}
	a, err := loadPack(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := loadPack(fs.Arg(1))
	if err != nil {
		return err
	}
	d := runpack.Diff(a, b)
	fmt.Fprint(out, d.Text())
	if d.Material {
		return fmt.Errorf("material drift between %s and %s", fs.Arg(0), fs.Arg(1))
	}
	return nil
}

// goldenDirs expands each argument into pack directories: an argument that
// is itself a pack (has manifest.json) stands alone; otherwise its
// immediate subdirectories holding a manifest are the goldens, sorted.
func goldenDirs(paths []string) ([]string, error) {
	var dirs []string
	for _, p := range paths {
		if _, err := os.Stat(filepath.Join(p, "manifest.json")); err == nil {
			dirs = append(dirs, p)
			continue
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return nil, err
		}
		found := 0
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			sub := filepath.Join(p, e.Name())
			if _, err := os.Stat(filepath.Join(sub, "manifest.json")); err == nil {
				dirs = append(dirs, sub)
				found++
			}
		}
		if found == 0 {
			return nil, fmt.Errorf("regress: %s holds no runpack (no manifest.json at or below it)", p)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("regress: bad -workers value %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func regressCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("runpack regress", flag.ContinueOnError)
	workersList := fs.String("workers", "1,4,8", "comma-separated worker counts to re-execute at")
	keys := addKeyFlags(fs, true)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("regress: need at least one golden pack directory")
	}
	opts, err := keys.verifyOpts()
	if err != nil {
		return err
	}
	workers, err := parseWorkers(*workersList)
	if err != nil {
		return err
	}
	dirs, err := goldenDirs(fs.Args())
	if err != nil {
		return err
	}
	reg, err := experiments.Default()
	if err != nil {
		return err
	}
	failures := 0
	for _, dir := range dirs {
		golden, err := loadPack(dir)
		if err != nil {
			return err
		}
		// The golden must be intact before it can gate anything.
		if err := golden.Verify(opts); err != nil {
			return fmt.Errorf("%s: golden does not verify: %w", dir, err)
		}
		name := golden.Manifest.Experiment
		for _, w := range workers {
			env := regressEnv(golden.Manifest.RootSeed, w)
			res, err := reg.Run(context.Background(), env, name)
			if err != nil {
				return fmt.Errorf("%s: re-executing %s: %w", dir, name, err)
			}
			cand, err := reg.Seal(res, env, runpack.DevKey())
			if err != nil {
				return err
			}
			d := runpack.Diff(golden, cand)
			if d.Material {
				failures++
				fmt.Fprintf(out, "FAIL %-34s workers=%d\n%s", name, w, d.Text())
				continue
			}
			status := "ok"
			if d.Provenance {
				status = "ok (provenance drift)"
			}
			fmt.Fprintf(out, "regress %-34s workers=%d %s\n", name, w, status)
		}
	}
	if failures > 0 {
		return fmt.Errorf("regress: %d material drift(s) across %d golden pack(s)", failures, len(dirs))
	}
	fmt.Fprintf(out, "regress: %d golden pack(s) reproduce byte-identically at workers %s\n", len(dirs), *workersList)
	return nil
}
