package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/experiments"
)

func runCapture(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestFullReportOutput(t *testing.T) {
	out := runCapture(t)
	for _, want := range []string{"Table 1", "Table 2", "Figure 2", "Q3"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestSingleArtifacts(t *testing.T) {
	if out := runCapture(t, "-table", "1"); !strings.Contains(out, "StreamFlow") {
		t.Error("table 1 missing tool names")
	}
	if out := runCapture(t, "-table", "2", "-format", "csv"); !strings.Contains(out, "✓") {
		t.Error("table 2 csv missing checkmarks")
	}
	if out := runCapture(t, "-fig", "2", "-format", "csv"); !strings.Contains(out, "Orchestration,7") {
		t.Error("fig 2 csv wrong")
	}
	if out := runCapture(t, "-fig", "3", "-format", "svg"); !strings.HasPrefix(out, "<svg") {
		t.Error("fig 3 svg wrong")
	}
	if out := runCapture(t, "-fig", "1"); !strings.Contains(out, "FL3") {
		t.Error("fig 1 missing flagships")
	}
}

// The -workers flag never changes output: the full report and every
// artifact file are byte-identical for workers 1, 2 and 8.
func TestWorkersFlagOutputInvariant(t *testing.T) {
	want := runCapture(t, "-workers", "1")
	for _, w := range []string{"2", "8"} {
		if got := runCapture(t, "-workers", w); got != want {
			t.Errorf("-workers %s report differs from -workers 1", w)
		}
	}

	dirSeq, dirPar := t.TempDir(), t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-out", dirSeq, "-workers", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-out", dirPar, "-workers", "8"}, &sb); err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(dirSeq)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		a, err := os.ReadFile(filepath.Join(dirSeq, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirPar, f.Name()))
		if err != nil {
			t.Fatalf("artifact %s missing in parallel run: %v", f.Name(), err)
		}
		if string(a) != string(b) {
			t.Errorf("artifact %s differs between -workers 1 and 8", f.Name())
		}
	}
}

func TestErrorPaths(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-table", "9"}, &sb); err == nil {
		t.Error("unknown table accepted")
	}
	if err := run([]string{"-fig", "9"}, &sb); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-fig", "2", "-format", "pdf"}, &sb); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run([]string{"-fig", "1", "-format", "svg"}, &sb); err == nil {
		t.Error("fig 1 svg accepted")
	}
	if err := run([]string{"-catalog", "/nonexistent.json"}, &sb); err == nil {
		t.Error("missing catalog file accepted")
	}
}

func TestWriteAllArtifacts(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-out", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	wantFiles := []string{"table1.txt", "table2.md", "fig2.svg", "fig3.csv", "fig4.txt", "report.txt"}
	for _, f := range wantFiles {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("artifact %s missing: %v", f, err)
		}
	}
}

func TestCustomCatalog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cat.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	c := catalog.Default()
	c.Title = "custom ecosystem"
	if err := c.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	out := runCapture(t, "-catalog", path)
	if !strings.Contains(out, "custom ecosystem") {
		t.Error("custom catalog not used")
	}
}

func TestTable2SVG(t *testing.T) {
	out := runCapture(t, "-table", "2", "-format", "svg")
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "circle") {
		t.Error("table 2 svg rendering wrong")
	}
	var sb strings.Builder
	if err := run([]string{"-table", "1", "-format", "svg"}, &sb); err == nil {
		t.Error("table 1 svg should be rejected")
	}
}

func TestExtensionFigure(t *testing.T) {
	out := runCapture(t, "-fig", "5")
	if !strings.Contains(out, "publication year") {
		t.Errorf("extension figure output:\n%s", out)
	}
	if out := runCapture(t, "-fig", "5", "-format", "csv"); !strings.Contains(out, "2021") {
		t.Error("extension csv missing years")
	}
}

// -metrics appends a deterministic Prometheus exposition covering the
// rendered artifacts; identical invocations are byte-identical.
func TestMetricsFlag(t *testing.T) {
	out := runCapture(t, "-fig", "2", "-format", "csv", "-metrics")
	for _, want := range []string{
		"# metrics (Prometheus text exposition)",
		"# TYPE smsreport_renders counter\nsmsreport_renders 1\n",
		"# TYPE smsreport_artifact_bytes summary",
		"smsreport_artifact_bytes_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if again := runCapture(t, "-fig", "2", "-format", "csv", "-metrics"); again != out {
		t.Error("-metrics output differs across identical runs")
	}
	if strings.Contains(runCapture(t, "-fig", "2", "-format", "csv"), "# metrics") {
		t.Error("metrics printed without the flag")
	}
}

// Under -out, every artifact is counted and the exposition is identical for
// any worker-pool size.
func TestMetricsWriteAllWorkerInvariant(t *testing.T) {
	render := func(workers string) string {
		dir := t.TempDir()
		return runCapture(t, "-out", dir, "-workers", workers, "-metrics")
	}
	out := render("1")
	if !strings.Contains(out, "smsreport_renders 20") {
		t.Errorf("expected 20 artifacts counted:\n%s", out)
	}
	if got := render("8"); got != out {
		t.Errorf("metrics differ between 1 and 8 workers:\n--- want\n%s--- got\n%s", out, got)
	}
}

func TestCacheFlagByteIdentical(t *testing.T) {
	dir := t.TempDir()
	plain := runCapture(t)
	cold := runCapture(t, "-cache", filepath.Join(dir, "store"))
	if cold != plain {
		t.Fatal("-cache cold build differs from uncached output")
	}
	warm := runCapture(t, "-cache", filepath.Join(dir, "store"))
	if warm != plain {
		t.Fatal("-cache warm rebuild differs from uncached output")
	}
	// The store directory must have been populated by the cold build.
	if _, err := os.Stat(filepath.Join(dir, "store", "objects")); err != nil {
		t.Fatalf("cache store not created: %v", err)
	}
}

// The registry-driven flags: -run report.full prints exactly the plain
// report bytes, invariant across worker counts; -list names every
// experiment; -run all sweeps the registry and goes fully cached on a
// warm store.
func TestRegistryFlags(t *testing.T) {
	plain := runCapture(t)
	for _, workers := range []string{"1", "4", "8"} {
		if out := runCapture(t, "-run", "report.full", "-workers", workers); out != plain {
			t.Fatalf("-run report.full -workers %s diverges from the plain render", workers)
		}
	}

	n := experiments.ExpectedExperiments
	list := runCapture(t, "-list")
	for _, want := range []string{"report.full", "scenario/3.1/fastflow", "sweep/faults", "continuum/io", "scengen/faults",
		fmt.Sprintf("%d experiments", n)} {
		if !strings.Contains(list, want) {
			t.Errorf("-list missing %q", want)
		}
	}

	dir := t.TempDir()
	cold := runCapture(t, "-run", "all", "-cache", filepath.Join(dir, "c"))
	if !strings.Contains(cold, fmt.Sprintf("%d experiments ok (hits=0 misses=%d)", n, n)) {
		t.Errorf("cold sweep accounting wrong:\n%s", cold)
	}
	warm := runCapture(t, "-run", "all", "-cache", filepath.Join(dir, "c"))
	if !strings.Contains(warm, fmt.Sprintf("%d experiments ok (hits=%d misses=0)", n, n)) {
		t.Errorf("warm sweep executed bodies:\n%s", warm)
	}
	if !strings.Contains(warm, "report.full") || !strings.Contains(warm, "cached") {
		t.Errorf("warm sweep summary malformed:\n%s", warm)
	}

	jsonOut := runCapture(t, "-run", "continuum/io", "-json")
	for _, want := range []string{`"experiment": "continuum/io"`, `"fingerprint"`, `"overlap_x"`} {
		if !strings.Contains(jsonOut, want) {
			t.Errorf("-json output missing %q", want)
		}
	}

	var sb strings.Builder
	if err := run([]string{"-run", "no-such-experiment"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
}
