// Command smsreport regenerates the tables and figures of "A Systematic
// Mapping Study of Italian Research on Workflows" (SC-W 2023) from the
// embedded study dataset.
//
// Usage:
//
//	smsreport                         # full report to stdout
//	smsreport -table 1 -format md    # one table as markdown
//	smsreport -fig 2 -format svg     # one figure as SVG
//	smsreport -out artifacts/         # write every artifact in every format
//	smsreport -catalog file.json      # run over an alternative catalog
//	smsreport -workers 4              # bound the render worker pool
//	smsreport -cache .smscache        # memoize the full report (warm = no re-render)
//	smsreport -cpuprofile cpu.pprof   # profile the render (go tool pprof cpu.pprof)
//	smsreport -memprofile mem.pprof   # allocation profile after the render
//	smsreport -run corpus/classify    # sharded classification of the synthetic corpus
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"repro/internal/cas"
	"repro/internal/catalog"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smsreport:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("smsreport", flag.ContinueOnError)
	var (
		tableN      = fs.Int("table", 0, "render only table N (1 or 2)")
		figN        = fs.Int("fig", 0, "render only figure N (1-4)")
		format      = fs.String("format", "text", "output format: text, md, csv, svg")
		outDir      = fs.String("out", "", "write all artifacts into this directory")
		catalogPath = fs.String("catalog", "", "load catalog from JSON file instead of the embedded dataset")
		workers     = fs.Int("workers", runtime.GOMAXPROCS(0), "render worker pool size (1 = sequential; output is identical for any value)")
		metrics     = fs.Bool("metrics", false, "append Prometheus-text render metrics after the output")
		cacheDir    = fs.String("cache", "", "content-addressed artifact cache directory for the full report: a warm rebuild over an unchanged study re-renders nothing (internal/cas)")
		cpuProfile  = fs.String("cpuprofile", "", "write a pprof CPU profile of the render to this file")
		memProfile  = fs.String("memprofile", "", "write a pprof allocation profile after the render to this file")
		listExp     = fs.Bool("list", false, "list every registered experiment and exit")
		runExp      = fs.String("run", "", "run one registered experiment by name (\"all\" = whole registry)")
		jsonOut     = fs.Bool("json", false, "with -run: emit the experiment Result as JSON")
		seed        = fs.Int64("seed", 1, "with -run: root experiment seed")
		runpackDir  = fs.String("runpack", "", "with -run: seal each executed experiment into a signed runpack under this directory (cmd/runpack verifies)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "smsreport: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap so the profile shows retained allocations
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "smsreport: memprofile:", err)
			}
		}()
	}
	var reg *telemetry.Registry
	if *metrics {
		// A Sim clock keeps the exposition wall-clock free: the metrics
		// depend only on the rendered artifacts, so identical invocations
		// give byte-identical output regardless of machine or worker count.
		reg = telemetry.NewWithClock(clock.NewSim(1))
	}

	cat := catalog.Default()
	if *catalogPath != "" {
		f, err := os.Open(*catalogPath)
		if err != nil {
			return err
		}
		defer f.Close()
		cat, err = catalog.ReadJSON(f)
		if err != nil {
			return err
		}
	}
	study, err := core.NewStudy(cat)
	if err != nil {
		return err
	}

	cliOpts := experiments.CLIOptions{
		List: *listExp, Run: *runExp, JSON: *jsonOut,
		Seed: *seed, Workers: *workers, Cache: *cacheDir, Runpack: *runpackDir,
	}
	if cliOpts.Active() {
		reg, err := experiments.New(study)
		if err != nil {
			return err
		}
		return experiments.RunCLI(reg, cliOpts, stdout)
	}

	if *outDir != "" {
		if err := writeAll(study, *outDir, *workers, reg); err != nil {
			return err
		}
		return printMetrics(stdout, reg)
	}
	if *tableN != 0 {
		out, err := renderTable(study, *tableN, *format)
		if err != nil {
			return err
		}
		observeRender(reg, out)
		fmt.Fprint(stdout, out)
		return printMetrics(stdout, reg)
	}
	if *figN != 0 {
		out, err := renderFig(study, *figN, *format)
		if err != nil {
			return err
		}
		observeRender(reg, out)
		fmt.Fprint(stdout, out)
		return printMetrics(stdout, reg)
	}
	var full string
	if *cacheDir != "" {
		store, err := cas.NewDiskStore(*cacheDir)
		if err != nil {
			return err
		}
		// The sim clock keeps cache spans and journal-free telemetry
		// byte-identical across invocations; the report bytes equal the
		// uncached render either way.
		memo := &cas.Memo{Store: store, Clock: clock.NewSim(1), Metrics: reg}
		full, _, err = report.FullCached(study, memo)
		if err != nil {
			return err
		}
	} else {
		full, err = report.Full(study, par.Workers(*workers))
		if err != nil {
			return err
		}
	}
	observeRender(reg, full)
	fmt.Fprint(stdout, full)
	return printMetrics(stdout, reg)
}

// observeRender records one rendered artifact into the metrics registry.
func observeRender(reg *telemetry.Registry, out string) {
	if reg == nil {
		return
	}
	reg.Inc("smsreport.renders", 1)
	reg.Inc("smsreport.bytes_total", int64(len(out)))
	reg.Observe("smsreport.artifact_bytes", float64(len(out)))
}

// printMetrics appends the Prometheus exposition when -metrics was given.
func printMetrics(stdout io.Writer, reg *telemetry.Registry) error {
	if reg == nil {
		return nil
	}
	_, err := fmt.Fprintf(stdout, "\n# metrics (Prometheus text exposition)\n%s", reg.PromText())
	return err
}

func renderTable(s *core.Study, n int, format string) (string, error) {
	var tb = report.Table1(s)
	switch n {
	case 1:
	case 2:
		tb = report.Table2(s)
	default:
		return "", fmt.Errorf("unknown table %d (the paper has tables 1 and 2)", n)
	}
	switch format {
	case "text":
		return tb.ASCII()
	case "md":
		return tb.Markdown()
	case "csv":
		return tb.CSV()
	case "svg":
		if n != 2 {
			return "", fmt.Errorf("only table 2 has an SVG (matrix) rendering")
		}
		return report.Table2Matrix(s).SVG()
	default:
		return "", fmt.Errorf("tables support formats text, md, csv (table 2 also svg); got %q", format)
	}
}

func renderFig(s *core.Study, n int, format string) (string, error) {
	switch n {
	case 1:
		if format != "text" {
			return "", fmt.Errorf("figure 1 is structural; only text format is supported")
		}
		return report.Fig1(s), nil
	case 2, 4:
		pie := report.Fig2(s)
		if n == 4 {
			var err error
			pie, err = report.Fig4(s)
			if err != nil {
				return "", err
			}
		}
		switch format {
		case "text":
			return pie.ASCII(40)
		case "svg":
			return pie.SVG(320)
		case "csv":
			return pie.CSV()
		}
		return "", fmt.Errorf("pie figures support formats text, svg, csv; got %q", format)
	case 3, 5:
		bar := report.Fig3(s)
		if n == 5 { // extension figure E1: tools per publication year
			bar = report.FigE1(s)
		}
		switch format {
		case "text":
			return bar.ASCII()
		case "svg":
			return bar.SVG(480, 320)
		case "csv":
			return bar.CSV()
		}
		return "", fmt.Errorf("bar figures support formats text, svg, csv; got %q", format)
	default:
		return "", fmt.Errorf("unknown figure %d (the paper has figures 1-4; 5 = extension E1)", n)
	}
}

// writeAll materializes every artifact in every applicable format under
// dir. Artifacts render concurrently on the worker pool and are written in
// the fixed artifact order, so repeated runs produce identical files.
func writeAll(s *core.Study, dir string, workers int, reg *telemetry.Registry) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	type artifact struct {
		name   string
		render func() (string, error)
	}
	var artifacts []artifact
	for _, spec := range []struct {
		n       int
		formats []string
		ext     map[string]string
	}{
		{1, []string{"text", "md", "csv"}, map[string]string{"text": "txt", "md": "md", "csv": "csv"}},
		{2, []string{"text", "md", "csv"}, map[string]string{"text": "txt", "md": "md", "csv": "csv"}},
	} {
		spec := spec
		for _, f := range spec.formats {
			f := f
			artifacts = append(artifacts, artifact{
				name:   fmt.Sprintf("table%d.%s", spec.n, spec.ext[f]),
				render: func() (string, error) { return renderTable(s, spec.n, f) },
			})
		}
	}
	artifacts = append(artifacts, artifact{"fig1.txt", func() (string, error) { return renderFig(s, 1, "text") }})
	for _, n := range []int{2, 3, 4, 5} {
		n := n
		for _, f := range []string{"text", "svg", "csv"} {
			f := f
			ext := map[string]string{"text": "txt", "svg": "svg", "csv": "csv"}[f]
			artifacts = append(artifacts, artifact{
				name:   fmt.Sprintf("fig%d.%s", n, ext),
				render: func() (string, error) { return renderFig(s, n, f) },
			})
		}
	}
	artifacts = append(artifacts, artifact{"report.txt", func() (string, error) { return report.Full(s, par.Workers(1)) }})

	rendered, err := par.MapReduceN(len(artifacts), func(_, lo, hi int) ([]string, error) {
		outs := make([]string, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out, err := artifacts[i].render()
			if err != nil {
				return nil, fmt.Errorf("rendering %s: %w", artifacts[i].name, err)
			}
			outs = append(outs, out)
		}
		return outs, nil
	}, func(a, b []string) []string { return append(a, b...) }, par.Workers(workers), par.Grain(1))
	if err != nil {
		return err
	}
	for i, a := range artifacts {
		// Observed in fixed artifact order after the parallel gather, so the
		// registry contents never depend on the worker count.
		observeRender(reg, rendered[i])
		if err := os.WriteFile(filepath.Join(dir, a.name), []byte(rendered[i]), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d artifacts to %s\n", len(artifacts), dir)
	return nil
}
