// Command wfrun compiles a TOSCA-style blueprint (JSON) into a workflow,
// places it on a simulated Computing Continuum with a chosen orchestration
// policy, and reports the schedule: per-step placement and timing, makespan,
// energy, cost, and data movement.
//
// Usage:
//
//	wfrun -blueprint app.json                 # policy from the blueprint
//	wfrun -blueprint app.json -policy heft    # override policy
//	wfrun -blueprint app.json -compare        # run every built-in policy
//	wfrun -demo                               # built-in demo blueprint
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"

	"repro/internal/continuum"
	"repro/internal/orchestrator"
	"repro/internal/workflow"
)

const demoBlueprint = `{
  "name": "hybrid-analytics",
  "version": "1.0",
  "components": [
    {"name": "ingest", "type": "function", "gflop": 20, "output_mb": 400, "tier": "edge"},
    {"name": "clean", "type": "job", "gflop": 300, "cores": 4, "output_mb": 200, "depends_on": ["ingest"]},
    {"name": "train", "type": "job", "gflop": 8000, "cores": 32, "tier": "hpc", "output_mb": 50, "depends_on": ["clean"]},
    {"name": "validate", "type": "job", "gflop": 500, "cores": 8, "output_mb": 10, "depends_on": ["train"]},
    {"name": "serve", "type": "container", "gflop": 10, "tier": "cloud", "output_mb": 1, "depends_on": ["validate"]}
  ],
  "policies": {"placement": "heft"}
}`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wfrun:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("wfrun", flag.ContinueOnError)
	var (
		bpPath  = fs.String("blueprint", "", "path to a blueprint JSON file")
		policy  = fs.String("policy", "", "override placement policy (random, round-robin, data-local, cost-aware, energy-aware, heft)")
		compare = fs.Bool("compare", false, "simulate every built-in policy and rank by makespan")
		demo    = fs.Bool("demo", false, "use the built-in demo blueprint")
		seed    = fs.Int64("seed", 1, "seed for the random policy")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var src io.Reader
	switch {
	case *demo:
		src = strings.NewReader(demoBlueprint)
	case *bpPath != "":
		f, err := os.Open(*bpPath)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	default:
		return fmt.Errorf("need -blueprint FILE or -demo")
	}

	bp, err := orchestrator.ParseBlueprint(src)
	if err != nil {
		return err
	}
	if *policy != "" {
		bp.Policies.Placement = *policy
	}

	if *compare {
		schedules, err := orchestrator.Compare(
			func() *workflow.Workflow {
				wf, cerr := bp.Compile()
				if cerr != nil {
					panic(cerr) // validated above
				}
				return wf
			},
			continuum.Testbed,
			orchestrator.Policies(rand.New(rand.NewSource(*seed))),
		)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Blueprint %s: policy comparison (best makespan first)\n", bp.Name)
		fmt.Fprintf(out, "%-14s %10s %12s %10s %12s %6s\n", "policy", "makespan", "energy", "cost", "moved", "nodes")
		for _, s := range schedules {
			fmt.Fprintf(out, "%-14s %9.2fs %11.0fJ %9.4f€ %11.0fB %6d\n",
				s.Policy, s.Makespan, s.TotalEnergyJ(), s.CostEUR, s.BytesMoved, s.NodesUsed)
		}
		return nil
	}

	wf, err := bp.Compile()
	if err != nil {
		return err
	}
	pol, err := bp.Policy()
	if err != nil {
		return err
	}
	inf := continuum.Testbed()
	placement, err := pol.Place(wf, inf)
	if err != nil {
		return err
	}
	sched, err := orchestrator.Simulate(wf, inf, placement, pol.Name())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Blueprint %s on policy %s\n\n", bp.Name, pol.Name())
	fmt.Fprintf(out, "%-12s %-10s %10s %10s %10s %10s\n", "step", "node", "ready", "start", "finish", "wait")
	ids := make([]string, 0, len(sched.Steps))
	for id := range sched.Steps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return sched.Steps[ids[i]].Start < sched.Steps[ids[j]].Start })
	for _, id := range ids {
		tr := sched.Steps[id]
		fmt.Fprintf(out, "%-12s %-10s %9.2fs %9.2fs %9.2fs %9.2fs\n",
			id, tr.NodeID, tr.Ready, tr.Start, tr.Finish, tr.WaitS)
	}
	fmt.Fprintf(out, "\nmakespan %.2fs | energy %.0fJ (dynamic %.0f + idle %.0f) | cost %.4f€ | moved %.0fB | nodes %d\n",
		sched.Makespan, sched.TotalEnergyJ(), sched.DynamicEnergyJ, sched.IdleEnergyJ,
		sched.CostEUR, sched.BytesMoved, sched.NodesUsed)
	return nil
}
