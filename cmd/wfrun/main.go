// Command wfrun compiles a TOSCA-style blueprint (JSON) into a workflow,
// places it on a simulated Computing Continuum with a chosen orchestration
// policy, and reports the schedule: per-step placement and timing, makespan,
// energy, cost, and data movement.
//
// With -store it instead *executes* the workflow through the
// content-addressed artifact store (internal/cas): step results are
// memoized on (workflow, step, body fingerprint, dep hashes), a checkpoint
// journal records completed steps, and -resume replays only the steps that
// had not completed after a fault.
//
// Usage:
//
//	wfrun -blueprint app.json                 # policy from the blueprint
//	wfrun -blueprint app.json -policy heft    # override policy
//	wfrun -blueprint app.json -compare        # run every built-in policy
//	wfrun -demo                               # built-in demo blueprint
//	wfrun -demo -store .wfcache               # memoized execution (cold)
//	wfrun -demo -store .wfcache -cache-stats  # …again: every step hits
//	wfrun -demo -store .wfcache -fail-step train   # inject a fault mid-run
//	wfrun -demo -store .wfcache -resume       # replay only incomplete steps
//	wfrun -list                               # list registered experiments
//	wfrun -run sweep/faults                   # run one experiment
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"repro/internal/rng"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/cas"
	"repro/internal/clock"
	"repro/internal/continuum"
	"repro/internal/experiments"
	"repro/internal/orchestrator"
	"repro/internal/workflow"
)

const demoBlueprint = `{
  "name": "hybrid-analytics",
  "version": "1.0",
  "components": [
    {"name": "ingest", "type": "function", "gflop": 20, "output_mb": 400, "tier": "edge"},
    {"name": "clean", "type": "job", "gflop": 300, "cores": 4, "output_mb": 200, "depends_on": ["ingest"]},
    {"name": "train", "type": "job", "gflop": 8000, "cores": 32, "tier": "hpc", "output_mb": 50, "depends_on": ["clean"]},
    {"name": "validate", "type": "job", "gflop": 500, "cores": 8, "output_mb": 10, "depends_on": ["train"]},
    {"name": "serve", "type": "container", "gflop": 10, "tier": "cloud", "output_mb": 1, "depends_on": ["validate"]}
  ],
  "policies": {"placement": "heft"}
}`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wfrun:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("wfrun", flag.ContinueOnError)
	var (
		bpPath     = fs.String("blueprint", "", "path to a blueprint JSON file")
		policy     = fs.String("policy", "", "override placement policy (random, round-robin, data-local, cost-aware, energy-aware, heft)")
		compare    = fs.Bool("compare", false, "simulate every built-in policy and rank by makespan")
		demo       = fs.Bool("demo", false, "use the built-in demo blueprint")
		seed       = fs.Int64("seed", 1, "seed for the random policy and the simulated clock")
		storeDir   = fs.String("store", "", "content-addressed artifact store directory: execute the workflow with step memoization and checkpointing (internal/cas)")
		resume     = fs.Bool("resume", false, "resume from the store's checkpoint journal, replaying only steps that had not completed (requires -store)")
		cacheStats = fs.Bool("cache-stats", false, "print cache hit/miss and store statistics after a -store execution")
		failStep   = fs.String("fail-step", "", "inject a failure into this step during a -store execution (checkpoint/resume demo)")
		listExp    = fs.Bool("list", false, "list every registered experiment and exit")
		runExp     = fs.String("run", "", "run one registered experiment by name (\"all\" = whole registry)")
		jsonOut    = fs.Bool("json", false, "with -run: emit the experiment Result as JSON")
		workers    = fs.Int("workers", 0, "with -run: bound the experiment worker pool (0 = default; results identical for any value)")
		runpackDir = fs.String("runpack", "", "with -run: seal each executed experiment into a signed runpack under this directory (cmd/runpack verifies)")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write a pprof allocation profile after the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wfrun: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap so the profile shows retained allocations
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "wfrun: memprofile:", err)
			}
		}()
	}
	cliOpts := experiments.CLIOptions{
		List: *listExp, Run: *runExp, JSON: *jsonOut,
		Seed: *seed, Workers: *workers, Cache: *storeDir, Runpack: *runpackDir,
	}
	if cliOpts.Active() {
		reg, err := experiments.Default()
		if err != nil {
			return err
		}
		return experiments.RunCLI(reg, cliOpts, out)
	}
	if (*resume || *cacheStats || *failStep != "") && *storeDir == "" {
		return fmt.Errorf("-resume, -cache-stats and -fail-step require -store DIR")
	}
	if *storeDir != "" && *compare {
		return fmt.Errorf("-store (execution) and -compare (simulation) are mutually exclusive")
	}

	var src io.Reader
	switch {
	case *demo:
		src = strings.NewReader(demoBlueprint)
	case *bpPath != "":
		f, err := os.Open(*bpPath)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	default:
		return fmt.Errorf("need -blueprint FILE or -demo")
	}

	bp, err := orchestrator.ParseBlueprint(src)
	if err != nil {
		return err
	}
	if *policy != "" {
		bp.Policies.Placement = *policy
	}

	if *compare {
		schedules, err := orchestrator.Compare(
			func() *workflow.Workflow {
				wf, cerr := bp.Compile()
				if cerr != nil {
					panic(cerr) // validated above
				}
				return wf
			},
			continuum.Testbed,
			orchestrator.Policies(rng.New(*seed)),
		)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Blueprint %s: policy comparison (best makespan first)\n", bp.Name)
		fmt.Fprintf(out, "%-14s %10s %12s %10s %12s %6s\n", "policy", "makespan", "energy", "cost", "moved", "nodes")
		for _, s := range schedules {
			fmt.Fprintf(out, "%-14s %9.2fs %11.0fJ %9.4f€ %11.0fB %6d\n",
				s.Policy, s.Makespan, s.TotalEnergyJ(), s.CostEUR, s.BytesMoved, s.NodesUsed)
		}
		return nil
	}

	wf, err := bp.Compile()
	if err != nil {
		return err
	}
	if *storeDir != "" {
		return execute(out, wf, *storeDir, *resume, *cacheStats, *failStep, *seed)
	}
	pol, err := bp.Policy()
	if err != nil {
		return err
	}
	inf := continuum.Testbed()
	placement, err := pol.Place(wf, inf)
	if err != nil {
		return err
	}
	sched, err := orchestrator.Simulate(wf, inf, placement, pol.Name())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Blueprint %s on policy %s\n\n", bp.Name, pol.Name())
	fmt.Fprintf(out, "%-12s %-10s %10s %10s %10s %10s\n", "step", "node", "ready", "start", "finish", "wait")
	ids := make([]string, 0, len(sched.Steps))
	for id := range sched.Steps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return sched.Steps[ids[i]].Start < sched.Steps[ids[j]].Start })
	for _, id := range ids {
		tr := sched.Steps[id]
		fmt.Fprintf(out, "%-12s %-10s %9.2fs %9.2fs %9.2fs %9.2fs\n",
			id, tr.NodeID, tr.Ready, tr.Start, tr.Finish, tr.WaitS)
	}
	fmt.Fprintf(out, "\nmakespan %.2fs | energy %.0fJ (dynamic %.0f + idle %.0f) | cost %.4f€ | moved %.0fB | nodes %d\n",
		sched.Makespan, sched.TotalEnergyJ(), sched.DynamicEnergyJ, sched.IdleEnergyJ,
		sched.CostEUR, sched.BytesMoved, sched.NodesUsed)
	return nil
}

// bodyFingerprint pins a step's synthetic body identity: any change to the
// step's blueprint-derived parameters invalidates its cache entries.
func bodyFingerprint(s *workflow.Step) string {
	return fmt.Sprintf("wfrun/v1:%s:%g:%d:%g:%s", s.ID, s.WorkGFlop, s.Cores, s.OutputBytes, s.Tier)
}

// execute runs the compiled workflow through the content-addressed store:
// synthetic deterministic step bodies (each step's artifact derives from
// its parameters and its dependencies' artifacts), memoized on internal/cas
// with a checkpoint journal in the store directory. Everything runs on a
// clock.Sim seeded with seed — each executed step advances simulated time
// by 1 ms per GFlop — so the output, the journal, and the store contents
// are byte-identical across machines and runs.
func execute(out io.Writer, wf *workflow.Workflow, storeDir string, resume, cacheStats bool, failStep string, seed int64) error {
	store, err := cas.NewDiskStore(storeDir)
	if err != nil {
		return err
	}
	sim := clock.NewSim(seed)

	// Resume set from the previous run's checkpoint journal.
	journalPath := filepath.Join(storeDir, "journal.jsonl")
	var completed map[string]cas.Key
	if resume {
		f, err := os.Open(journalPath)
		if err != nil {
			return fmt.Errorf("no checkpoint journal to resume from: %w", err)
		}
		entries, err := cas.ReadJournal(f)
		f.Close()
		if err != nil {
			return err
		}
		completed = cas.Completed(entries, wf.Name)
	}

	jf, err := os.OpenFile(journalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer jf.Close()
	journal := cas.NewJournal(jf)

	bodies := map[string]workflow.StepFunc{}
	fingerprints := map[string]string{}
	for _, s := range wf.Steps() {
		s := s
		fingerprints[s.ID] = bodyFingerprint(s)
		bodies[s.ID] = func(_ context.Context, deps map[string]any) (any, error) {
			if s.ID == failStep {
				return nil, fmt.Errorf("injected failure at step %q", s.ID)
			}
			// Pay the modeled cost in simulated time: 1 ms per GFlop.
			sim.Sleep(time.Duration(s.WorkGFlop * float64(time.Millisecond)))
			enc, err := cas.Encode(deps)
			if err != nil {
				return nil, err
			}
			return fmt.Sprintf("artifact(%s gflop=%g out=%gB) inputs=%s",
				s.ID, s.WorkGFlop, s.OutputBytes, cas.KeyOf(enc).Short()), nil
		}
	}

	memo := &cas.Memo{
		Store:   store,
		Clock:   sim,
		Journal: journal,
		RunID:   "run",
		Resume:  completed,
	}
	// MaxConcurrent 1 keeps the journal's line order (not just its
	// canonical rendering) deterministic for a given blueprint.
	runner := &workflow.Runner{MaxConcurrent: 1, Clock: sim}
	res, runErr := memo.Run(context.Background(), runner, wf, bodies, fingerprints)
	if jerr := journal.Err(); jerr != nil {
		return jerr
	}

	mode := "memoized execution"
	if resume {
		mode = "resumed execution"
	}
	fmt.Fprintf(out, "Blueprint %s: %s (%d steps)\n\n", wf.Name, mode, wf.Len())
	fmt.Fprintf(out, "%-12s %-8s %s\n", "step", "status", "artifact")
	topo, err := wf.TopoOrder()
	if err != nil {
		return err
	}
	for _, id := range topo {
		key := "-"
		if k, ok := res.Keys[id]; ok {
			key = k.Short()
		}
		fmt.Fprintf(out, "%-12s %-8s %s\n", id, res.Status[id], key)
	}
	fmt.Fprintf(out, "\nsimulated time %.3fs | executed %d | cached %d | restored %d | skipped %d\n",
		clock.Seconds(sim.Now()), res.Stats.Executed, res.Stats.Hits, res.Stats.Restored,
		res.Stats.Skipped+res.Stats.Failed)

	if cacheStats {
		objects, err := store.Keys()
		if err != nil {
			return err
		}
		links, err := store.Links()
		if err != nil {
			return err
		}
		bytes, err := store.Bytes()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "cache: hits=%d misses=%d bytes-written=%d bytes-reused=%d\n",
			res.Stats.Hits+res.Stats.Restored, res.Stats.Misses, res.Stats.BytesWritten, res.Stats.BytesReused)
		fmt.Fprintf(out, "store: %d objects (%d B), %d memo links\n", len(objects), bytes, len(links))
	}
	if runErr != nil {
		return fmt.Errorf("execution failed (completed steps are checkpointed; re-run with -resume): %w", runErr)
	}
	return nil
}
