package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestDemoRun(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-demo"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"hybrid-analytics", "heft", "makespan", "train"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestDemoCompare(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-demo", "-compare"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, pol := range []string{"random", "round-robin", "data-local", "cost-aware", "energy-aware", "heft"} {
		if !strings.Contains(out, pol) {
			t.Errorf("comparison missing policy %q", pol)
		}
	}
}

func TestPolicyOverride(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-demo", "-policy", "round-robin"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "round-robin") {
		t.Error("policy override ignored")
	}
	if err := run([]string{"-demo", "-policy", "psychic"}, &sb); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestBlueprintFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bp.json")
	js := `{"name":"file-app","components":[{"name":"only","type":"job","gflop":10}]}`
	if err := os.WriteFile(path, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-blueprint", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "file-app") {
		t.Error("blueprint file not used")
	}
}

func TestMissingInput(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("no input accepted")
	}
	if err := run([]string{"-blueprint", "/nope.json"}, &sb); err == nil {
		t.Error("missing file accepted")
	}
}

// readGolden loads a testdata golden file.
func readGolden(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestDemoGolden pins the full -demo schedule output byte for byte: the
// simulation reads no wall clock, so the bytes are machine-independent.
func TestDemoGolden(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-demo"}, &sb); err != nil {
		t.Fatal(err)
	}
	if got, want := sb.String(), readGolden(t, "demo.golden"); got != want {
		t.Errorf("-demo output drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExecGolden pins the end-to-end memoized execution lifecycle under
// clock.Sim: cold build, warm rebuild (all hits, zero simulated seconds),
// mid-run fault, and resume replaying only the incomplete steps.
func TestExecGolden(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store")
	capture := func(wantErr bool, args ...string) string {
		t.Helper()
		var sb strings.Builder
		err := run(args, &sb)
		if wantErr && err == nil {
			t.Fatalf("run(%v): expected error", args)
		}
		if !wantErr && err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		return sb.String()
	}

	cold := capture(false, "-demo", "-store", store, "-cache-stats")
	if want := readGolden(t, "exec_cold.golden"); cold != want {
		t.Errorf("cold exec drifted:\n--- got ---\n%s--- want ---\n%s", cold, want)
	}
	warm := capture(false, "-demo", "-store", store, "-cache-stats")
	if want := readGolden(t, "exec_warm.golden"); warm != want {
		t.Errorf("warm exec drifted:\n--- got ---\n%s--- want ---\n%s", warm, want)
	}

	// Fresh store: fault at train, then resume.
	store2 := filepath.Join(t.TempDir(), "store2")
	fail := capture(true, "-demo", "-store", store2, "-fail-step", "train", "-cache-stats")
	if want := readGolden(t, "exec_fail.golden"); fail != want {
		t.Errorf("faulted exec drifted:\n--- got ---\n%s--- want ---\n%s", fail, want)
	}
	res := capture(false, "-demo", "-store", store2, "-resume", "-cache-stats")
	if want := readGolden(t, "exec_resume.golden"); res != want {
		t.Errorf("resumed exec drifted:\n--- got ---\n%s--- want ---\n%s", res, want)
	}
}

// TestExecFlagValidation covers the flag dependency rules.
func TestExecFlagValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-demo", "-resume"}, &sb); err == nil {
		t.Error("-resume without -store accepted")
	}
	if err := run([]string{"-demo", "-cache-stats"}, &sb); err == nil {
		t.Error("-cache-stats without -store accepted")
	}
	if err := run([]string{"-demo", "-store", t.TempDir(), "-compare"}, &sb); err == nil {
		t.Error("-store with -compare accepted")
	}
	if err := run([]string{"-demo", "-store", t.TempDir(), "-resume"}, &sb); err == nil {
		t.Error("-resume with no journal accepted")
	}
}

// The registry-driven flags: wfrun exposes the same shared assembly, and
// the sweep experiments are byte-stable across worker counts.
func TestRegistryFlags(t *testing.T) {
	var list strings.Builder
	if err := run([]string{"-list"}, &list); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sweep/faults", "sweep/resume", "sweep/slack",
		fmt.Sprintf("%d experiments", experiments.ExpectedExperiments)} {
		if !strings.Contains(list.String(), want) {
			t.Errorf("-list missing %q", want)
		}
	}
	var a, b strings.Builder
	if err := run([]string{"-run", "sweep/faults", "-seed", "3", "-workers", "1"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", "sweep/faults", "-seed", "3", "-workers", "8"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("sweep/faults output depends on the worker count")
	}
	if !strings.Contains(a.String(), "p(fail)") {
		t.Errorf("sweep table malformed:\n%s", a.String())
	}
}

// The profiling flags must leave valid, non-empty pprof files behind.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var sb strings.Builder
	if err := run([]string{"-demo", "-cpuprofile", cpu, "-memprofile", mem}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}
