package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDemoRun(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-demo"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"hybrid-analytics", "heft", "makespan", "train"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestDemoCompare(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-demo", "-compare"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, pol := range []string{"random", "round-robin", "data-local", "cost-aware", "energy-aware", "heft"} {
		if !strings.Contains(out, pol) {
			t.Errorf("comparison missing policy %q", pol)
		}
	}
}

func TestPolicyOverride(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-demo", "-policy", "round-robin"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "round-robin") {
		t.Error("policy override ignored")
	}
	if err := run([]string{"-demo", "-policy", "psychic"}, &sb); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestBlueprintFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bp.json")
	js := `{"name":"file-app","components":[{"name":"only","type":"job","gflop":10}]}`
	if err := os.WriteFile(path, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-blueprint", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "file-app") {
		t.Error("blueprint file not used")
	}
}

func TestMissingInput(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("no input accepted")
	}
	if err := run([]string{"-blueprint", "/nope.json"}, &sb); err == nil {
		t.Error("missing file accepted")
	}
}
