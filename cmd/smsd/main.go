// Command smsd serves the repository's experiment registry over HTTP: the
// daemon face of the unified exp contract. Submissions run on a bounded
// worker pool, results are memoized through a content-addressed store, and
// /metrics exposes the Prometheus-text telemetry.
//
// Usage:
//
//	smsd                               # daemon on :8347 (wall clock)
//	smsd -addr :9000 -workers 8        # tune listener and pool
//	smsd -store .smsd                  # persist results/artifacts on disk
//	smsd -list                         # list the registered experiments
//	smsd -loadtest 1000000             # deterministic in-process load replay
//	smsd -loadtest 50000 -lt-names continuum/io,continuum/energy
//
// Endpoints:
//
//	POST /experiments                          {"name": "...", "seed": 7}
//	GET  /experiments                          registered names + submissions
//	GET  /experiments/{id}                     poll status
//	GET  /experiments/{id}/artifacts/{name}    stream one artifact
//	GET  /experiments/{id}/runpack             sealed, signed runpack bundle
//	GET  /families                             list generated scengen families
//	POST /families/{name}                      submit one family sweep {"seed": 7}
//	GET  /metrics                              Prometheus text exposition
//
// -loadtest runs the internal/serve/loadgen replay instead of listening:
// the whole daemon stack on a simulated clock with the deterministic
// admission model, ending in a report whose every byte — including the
// sha256 of the final /metrics exposition — is a pure function of the
// flags. Identical across repeated runs and across -workers values.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"

	"repro/internal/cas"
	"repro/internal/clock"
	"repro/internal/experiments"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smsd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("smsd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8347", "listen address for daemon mode")
		storeDir = fs.String("store", "", "content-addressed store directory (default: in-memory)")
		seed     = fs.Int64("seed", 1, "default root seed for submissions that omit one")
		workers  = fs.Int("workers", 4, "execution pool size (results are identical for any value)")
		queue    = fs.Int("queue", 64, "admission queue depth (full queue answers 429)")
		list     = fs.Bool("list", false, "list every registered experiment and exit")
		loadtest = fs.Int("loadtest", 0, "replay N synthetic requests in-process on a simulated clock and print the deterministic report (no listener)")
		ltNames  = fs.String("lt-names", "", "with -loadtest: comma-separated experiment names (default: whole registry)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg, err := experiments.Default()
	if err != nil {
		return err
	}
	if *list {
		for _, e := range reg.Experiments() {
			fmt.Fprintf(stdout, "%-34s %s\n", e.Spec.Name, e.Desc)
		}
		fmt.Fprintf(stdout, "\n%d experiments (POST /experiments {\"name\": ...} to run one)\n", reg.Len())
		return nil
	}

	var store cas.Store
	if *storeDir != "" {
		store, err = cas.NewDiskStore(*storeDir)
		if err != nil {
			return err
		}
	}

	if *loadtest > 0 {
		names := reg.Names()
		if *ltNames != "" {
			names = strings.Split(*ltNames, ",")
			sort.Strings(names)
		}
		return runLoadtest(stdout, serve.Config{
			Registry: reg,
			Store:    store,
			Seed:     *seed,
			Workers:  *workers,
			QueueDepth: func() int {
				// The warmup phase submits every name before the first
				// drain; the queue must absorb them all.
				if *queue <= len(names) {
					return len(names) + 1
				}
				return *queue
			}(),
		}, *loadtest, *seed, names)
	}

	srv, err := serve.NewServer(serve.Config{
		Registry:   reg,
		Store:      store,
		Seed:       *seed,
		Workers:    *workers,
		QueueDepth: *queue,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "smsd: serving %d experiments on %s\n", reg.Len(), ln.Addr())
	// Publishing the pack key at startup is what makes every served runpack
	// verifiable offline: `runpack verify -pubkey <key> <bundle>`.
	fmt.Fprintf(stdout, "smsd: runpack public key %s\n", srv.PackPublicKey())
	return http.Serve(ln, srv)
}

// runLoadtest replays the standard profile in-process and prints the
// deterministic report: endpoint/code tallies, latency quantiles, and the
// digest of the final /metrics exposition.
func runLoadtest(stdout io.Writer, cfg serve.Config, requests int, seed int64, names []string) error {
	sim := clock.NewSim(seed)
	cfg.Clock = sim
	cfg.Cost = serve.NewCostModel(seed, 4, 0.025)
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	rep, err := loadgen.Run(srv, sim, loadgen.DefaultProfile(requests, seed, names))
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "smsd loadtest: %d requests over %d experiments, seed=%d, workers=%d\n",
		rep.Requests, len(names), seed, cfg.Workers)
	eps := make([]string, 0, len(rep.Endpoints))
	for ep := range rep.Endpoints {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		fmt.Fprintf(stdout, "  endpoint %-10s %d\n", ep, rep.Endpoints[ep])
	}
	codes := make([]int, 0, len(rep.Codes))
	for c := range rep.Codes {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(stdout, "  code %d        %d\n", c, rep.Codes[c])
	}
	fmt.Fprintf(stdout, "  rejected       %d\n", rep.Rejected)
	fmt.Fprintf(stdout, "  latency_us     p50=%.1f p95=%.1f p99=%.1f mean=%.1f max=%.1f\n",
		rep.Latency.P50*1e6, rep.Latency.P95*1e6, rep.Latency.P99*1e6,
		rep.Latency.Mean*1e6, rep.Latency.Max*1e6)
	fmt.Fprintf(stdout, "  prom_bytes     %d\n", len(rep.Prom))
	fmt.Fprintf(stdout, "  prom_sha256    %s\n", cas.KeyOf([]byte(rep.Prom)))
	return nil
}
