package main

import (
	"strings"
	"testing"
)

func TestListContainsRegistry(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"continuum/faas", "continuum/io", "report.full", "experiments (POST /experiments"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing %q:\n%s", want, out)
		}
	}
}

// The loadtest report is a deterministic artifact: identical bytes across
// repeated runs and across worker counts, down to the sha256 of the final
// /metrics exposition.
func TestLoadtestDeterministic(t *testing.T) {
	render := func(workers string) string {
		var sb strings.Builder
		err := run([]string{
			"-loadtest", "2000",
			"-lt-names", "continuum/io,continuum/energy",
			"-seed", "42",
			"-workers", workers,
		}, &sb)
		if err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := render("4")
	if got := render("4"); got != first {
		t.Fatalf("loadtest differs across identical runs:\n%s\nvs\n%s", first, got)
	}
	for _, w := range []string{"1", "8"} {
		got := render(w)
		// Only the echoed workers= header may differ.
		a := first[strings.Index(first, "\n"):]
		b := got[strings.Index(got, "\n"):]
		if a != b {
			t.Fatalf("loadtest differs between 4 and %s workers:\n%s\nvs\n%s", w, first, got)
		}
	}
	for _, want := range []string{"endpoint status", "code 200", "prom_sha256", "latency_us"} {
		if !strings.Contains(first, want) {
			t.Errorf("report missing %q:\n%s", want, first)
		}
	}
}

func TestLoadtestUnknownName(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-loadtest", "10", "-lt-names", "no/such"}, &sb); err == nil {
		t.Fatal("unknown -lt-names accepted")
	}
}
