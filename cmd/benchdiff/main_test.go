package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixture drops a benchmark record into dir and returns its path.
func writeFixture(t *testing.T, dir, name, body string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baseline = `[
  {"name": "BenchmarkKMeansSeq", "ns_per_op": 1000, "allocs_per_op": 10},
  {"name": "BenchmarkBootstrapQ3Seq", "ns_per_op": 500, "allocs_per_op": 0}
]`

func TestWithinThresholdPasses(t *testing.T) {
	dir := t.TempDir()
	old := writeFixture(t, dir, "old.json", baseline)
	cur := writeFixture(t, dir, "new.json", `[
	  {"name": "BenchmarkKMeansSeq", "ns_per_op": 1090, "allocs_per_op": 10},
	  {"name": "BenchmarkBootstrapQ3Seq", "ns_per_op": 450, "allocs_per_op": 1}
	]`)
	var out strings.Builder
	if err := run([]string{"-threshold", "0.10", old, cur}, &out); err != nil {
		t.Fatalf("within-threshold diff failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all 2 benchmarks within 10%") {
		t.Errorf("missing pass summary in output:\n%s", out.String())
	}
}

func TestNsRegressionFails(t *testing.T) {
	dir := t.TempDir()
	old := writeFixture(t, dir, "old.json", baseline)
	cur := writeFixture(t, dir, "new.json", `[
	  {"name": "BenchmarkKMeansSeq", "ns_per_op": 1200, "allocs_per_op": 10},
	  {"name": "BenchmarkBootstrapQ3Seq", "ns_per_op": 500, "allocs_per_op": 0}
	]`)
	var out strings.Builder
	err := run([]string{"-threshold", "0.10", old, cur}, &out)
	if err == nil {
		t.Fatalf("20%% ns/op regression passed the 10%% gate:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkKMeansSeq") {
		t.Errorf("error does not name the regressed benchmark: %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("table does not flag the regression:\n%s", out.String())
	}
}

func TestAllocRegressionFails(t *testing.T) {
	dir := t.TempDir()
	old := writeFixture(t, dir, "old.json", baseline)
	cur := writeFixture(t, dir, "new.json", `[
	  {"name": "BenchmarkKMeansSeq", "ns_per_op": 1000, "allocs_per_op": 40},
	  {"name": "BenchmarkBootstrapQ3Seq", "ns_per_op": 500, "allocs_per_op": 0}
	]`)
	var out strings.Builder
	if err := run([]string{old, cur}, &out); err == nil {
		t.Fatalf("4x allocs/op regression passed the gate:\n%s", out.String())
	}
}

// -alloc-threshold gates allocs/op independently of -threshold: an alloc
// growth inside the ns budget but past the alloc budget must fail.
func TestAllocThresholdIndependentOfNs(t *testing.T) {
	dir := t.TempDir()
	old := writeFixture(t, dir, "old.json", `[{"name": "B", "ns_per_op": 1000, "allocs_per_op": 100}]`)
	cur := writeFixture(t, dir, "new.json", `[{"name": "B", "ns_per_op": 1000, "allocs_per_op": 140}]`)
	var out strings.Builder
	// +40% allocs passes a loose 50% alloc threshold...
	if err := run([]string{"-threshold", "0.10", "-alloc-threshold", "0.50", old, cur}, &out); err != nil {
		t.Fatalf("+40%% allocs failed the 50%% alloc gate: %v\n%s", err, out.String())
	}
	// ...and fails a strict 10% alloc threshold even though ns/op is flat.
	out.Reset()
	err := run([]string{"-threshold", "0.50", "-alloc-threshold", "0.10", old, cur}, &out)
	if err == nil {
		t.Fatalf("+40%% allocs passed the 10%% alloc gate:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "allocs/op 100 -> 140") {
		t.Errorf("error does not describe the alloc regression: %v", err)
	}
	if !strings.Contains(err.Error(), "50% ns / 10% allocs") {
		t.Errorf("error does not state the split thresholds: %v", err)
	}
}

// An unset -alloc-threshold follows -threshold, the historical behaviour.
func TestAllocThresholdDefaultsToNsThreshold(t *testing.T) {
	dir := t.TempDir()
	old := writeFixture(t, dir, "old.json", `[{"name": "B", "ns_per_op": 1000, "allocs_per_op": 100}]`)
	cur := writeFixture(t, dir, "new.json", `[{"name": "B", "ns_per_op": 1000, "allocs_per_op": 140}]`)
	var out strings.Builder
	if err := run([]string{"-threshold", "0.50", old, cur}, &out); err != nil {
		t.Fatalf("+40%% allocs failed the inherited 50%% gate: %v", err)
	}
	out.Reset()
	if err := run([]string{"-threshold", "0.10", old, cur}, &out); err == nil {
		t.Fatalf("+40%% allocs passed the inherited 10%% gate:\n%s", out.String())
	}
}

func TestOneAllocSlackTolerated(t *testing.T) {
	dir := t.TempDir()
	old := writeFixture(t, dir, "old.json", `[{"name": "B", "ns_per_op": 100, "allocs_per_op": 0}]`)
	cur := writeFixture(t, dir, "new.json", `[{"name": "B", "ns_per_op": 100, "allocs_per_op": 1}]`)
	var out strings.Builder
	if err := run([]string{old, cur}, &out); err != nil {
		t.Fatalf("single-alloc pool jitter failed the gate: %v", err)
	}
}

func TestMissingBenchmarkFails(t *testing.T) {
	dir := t.TempDir()
	old := writeFixture(t, dir, "old.json", baseline)
	cur := writeFixture(t, dir, "new.json", `[
	  {"name": "BenchmarkKMeansSeq", "ns_per_op": 1000, "allocs_per_op": 10}
	]`)
	var out strings.Builder
	err := run([]string{old, cur}, &out)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("dropped benchmark not reported: %v", err)
	}
}

func TestGomaxprocsSuffixNormalized(t *testing.T) {
	dir := t.TempDir()
	old := writeFixture(t, dir, "old.json", `[{"name": "BenchmarkKMeansSeq", "ns_per_op": 1000, "allocs_per_op": 10}]`)
	cur := writeFixture(t, dir, "new.json", `[{"name": "BenchmarkKMeansSeq-8", "ns_per_op": 1000, "allocs_per_op": 10}]`)
	var out strings.Builder
	if err := run([]string{old, cur}, &out); err != nil {
		t.Fatalf("-8 suffix broke name matching: %v", err)
	}
}

func TestCountRunsCollapseToBest(t *testing.T) {
	dir := t.TempDir()
	// -count 3 output: three entries per name; the best run (1000 ns) is
	// within threshold of the baseline even though the worst is not.
	old := writeFixture(t, dir, "old.json", `[{"name": "B", "ns_per_op": 1000, "allocs_per_op": 10}]`)
	cur := writeFixture(t, dir, "new.json", `[
	  {"name": "B", "ns_per_op": 1400, "allocs_per_op": 10},
	  {"name": "B", "ns_per_op": 1000, "allocs_per_op": 10},
	  {"name": "B", "ns_per_op": 1250, "allocs_per_op": 10}
	]`)
	var out strings.Builder
	if err := run([]string{old, cur}, &out); err != nil {
		t.Fatalf("best-of-3 within threshold failed the gate: %v", err)
	}
}

func TestBadUsage(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"only-one.json"}, &out); err == nil {
		t.Error("single argument accepted")
	}
	dir := t.TempDir()
	old := writeFixture(t, dir, "old.json", baseline)
	if err := run([]string{"-threshold", "-1", old, old}, &out); err == nil {
		t.Error("negative threshold accepted")
	}
	if err := run([]string{filepath.Join(dir, "absent.json"), old}, &out); err == nil {
		t.Error("missing baseline file accepted")
	}
	bad := writeFixture(t, dir, "bad.json", `{"not": "an array"}`)
	if err := run([]string{old, bad}, &out); err == nil {
		t.Error("malformed JSON accepted")
	}
}
