// Command benchdiff compares two benchmark records produced by the
// Makefile's bench targets (BENCH_par.json, BENCH_kernels.json: arrays of
// {"name", "ns_per_op", "allocs_per_op"}) and exits non-zero when the
// current run regresses past the threshold — the bench-regression gate
// behind `make bench-gate`.
//
// Usage:
//
//	benchdiff [-threshold 0.10] [-alloc-threshold 0.10] baseline.json current.json
//
// A benchmark regresses when current ns/op exceeds baseline ns/op by more
// than the threshold fraction, or allocs/op exceeds its own threshold
// (-alloc-threshold, defaulting to -threshold) with one alloc of absolute
// slack (sync.Pool warm-up makes allocs/op jitter by ±1 between runs; a
// real leak moves it by orders of magnitude). The separate alloc threshold
// lets the gate hold allocation-free kernels to a tighter bound than their
// timing, which jitters with machine load while allocs/op does not. Benchmark names are
// compared after stripping the -N GOMAXPROCS suffix, so a baseline recorded
// on one machine gates runs on another. Duplicate entries for one name
// (from `go test -count N`) collapse to the best run per metric, so the
// gate compares best-of-N against best-of-N and scheduler noise on a
// shared machine stays out of the verdict.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strings"
)

type entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.10, "max tolerated fractional ns/op regression (0.10 = +10%)")
	allocThreshold := fs.Float64("alloc-threshold", -1,
		"max tolerated fractional allocs/op regression; negative = same as -threshold")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("want exactly two arguments (baseline.json current.json), got %d", fs.NArg())
	}
	if *threshold < 0 {
		return fmt.Errorf("negative threshold %v", *threshold)
	}
	if *allocThreshold < 0 {
		*allocThreshold = *threshold
	}
	base, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := load(fs.Arg(1))
	if err != nil {
		return err
	}
	return diff(stdout, fs.Arg(0), base, cur, *threshold, *allocThreshold)
}

// load reads one benchmark record, keyed by normalized benchmark name.
func load(path string) (map[string]entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []entry
	if err := json.Unmarshal(raw, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]entry, len(entries))
	for _, e := range entries {
		e.Name = normalize(e.Name)
		if e.Name == "" {
			return nil, fmt.Errorf("%s: entry with empty name", path)
		}
		// Duplicate names come from `go test -count N`: keep the best run
		// per metric, so the gate compares best-of-N against best-of-N and
		// scheduler noise on a shared machine does not trip it.
		if prev, ok := out[e.Name]; ok {
			if prev.NsPerOp < e.NsPerOp {
				e.NsPerOp = prev.NsPerOp
			}
			if prev.AllocsPerOp < e.AllocsPerOp {
				e.AllocsPerOp = prev.AllocsPerOp
			}
		}
		out[e.Name] = e
	}
	return out, nil
}

// gomaxprocsSuffix is the -N tag `go test -bench` appends to benchmark
// names on multi-core machines (absent when GOMAXPROCS=1).
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func normalize(name string) string {
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// diff prints a comparison table and returns an error naming every
// benchmark that regressed past the threshold or vanished from the current
// run (a silently dropped benchmark is a gate hole, not a pass).
func diff(w io.Writer, basePath string, base, cur map[string]entry, threshold, allocThreshold float64) error {
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)

	var regressions []string
	fmt.Fprintf(w, "%-28s %14s %14s %8s %10s %10s  %s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns", "old allocs", "new allocs", "verdict")
	for _, n := range names {
		b := base[n]
		c, ok := cur[n]
		if !ok {
			fmt.Fprintf(w, "%-28s %14.0f %14s %8s %10.0f %10s  MISSING\n",
				n, b.NsPerOp, "-", "-", b.AllocsPerOp, "-")
			regressions = append(regressions, n+" missing from current run")
			continue
		}
		var reasons []string
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+threshold) {
			reasons = append(reasons, fmt.Sprintf("ns/op %+.1f%%", 100*(c.NsPerOp/b.NsPerOp-1)))
		}
		// One alloc of absolute slack: pool warm-up jitter, not a leak.
		if c.AllocsPerOp > b.AllocsPerOp*(1+allocThreshold)+1 {
			reasons = append(reasons, fmt.Sprintf("allocs/op %.0f -> %.0f", b.AllocsPerOp, c.AllocsPerOp))
		}
		verdict := "ok"
		if len(reasons) > 0 {
			verdict = "REGRESSED (" + strings.Join(reasons, ", ") + ")"
			regressions = append(regressions, n+": "+strings.Join(reasons, ", "))
		}
		delta := "-"
		if b.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(c.NsPerOp/b.NsPerOp-1))
		}
		fmt.Fprintf(w, "%-28s %14.0f %14.0f %8s %10.0f %10.0f  %s\n",
			n, b.NsPerOp, c.NsPerOp, delta, b.AllocsPerOp, c.AllocsPerOp, verdict)
	}
	for n := range cur {
		if _, ok := base[n]; !ok {
			fmt.Fprintf(w, "%-28s %14s %14.0f %8s %10s %10.0f  new (not in baseline)\n",
				n, "-", cur[n].NsPerOp, "-", "-", cur[n].AllocsPerOp)
		}
	}
	limits := fmt.Sprintf("%.0f%%", threshold*100)
	if allocThreshold != threshold {
		limits = fmt.Sprintf("%.0f%% ns / %.0f%% allocs", threshold*100, allocThreshold*100)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed past %s vs %s:\n  %s",
			len(regressions), limits, basePath, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(w, "all %d benchmarks within %s of %s\n", len(names), limits, basePath)
	return nil
}
