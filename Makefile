# Reproduction of "A Systematic Mapping Study of Italian Research on
# Workflows" (SC-W 2023). Standard-library Go only; everything runs offline.

GO ?= go

.PHONY: all build vet test race audit clockgate randgate experiments regress bench bench-compare bench-kernels bench-gate bench-cache bench-events bench-serve bench-runpack bench-corpus bench-scen artifacts examples outputs clean

# audit (vet + race + clock gate + rand gate) is part of all: the parallel
# substrate (internal/par) and every hot path wired onto it must stay clean
# under the race detector, no simulator code may read the wall clock
# directly, and no experiment-registered package may seed math/rand.
# experiments runs every registered experiment under clock.Sim;
# bench-cache records the cold-vs-warm content-addressed report build;
# bench-serve records the smsd serving-path benchmarks (throughput and
# modeled latency quantiles included);
# bench-gate re-measures the kernel, serving, cas, runpack, corpus and
# generated-scenario benchmarks and fails the build if any regresses against
# the committed BENCH_kernels.json / BENCH_serve.json / BENCH_cas.json /
# BENCH_runpack.json / BENCH_corpus.json / BENCH_scen.json baselines;
# bench-events records the event-engine and
# sweep benchmarks; regress re-executes the committed golden runpacks at
# workers 1, 4 and 8 and fails on any byte of material drift (DESIGN.md §8).
all: build test audit experiments regress bench-cache bench-serve bench-gate bench-events

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# audit = static checks + race detector + the wall-clock gate (DESIGN.md §4)
# + the randomness gate (DESIGN.md §6).
audit: vet race clockgate randgate

# Enforce the clock contract: time.Now/time.Since/time.Sleep may appear in
# internal/ only inside internal/clock (the single wall-clock boundary) and
# in tests. The sweep covers every internal package, internal/cas included:
# the store, memo layer and checkpoint journal must stamp entries through
# the injected clock so journals are byte-identical under clock.Sim.
clockgate:
	@bad=$$(grep -rn --include='*.go' -E 'time\.(Now|Since|Sleep)\(' internal/ \
		| grep -v '^internal/clock/' | grep -v '_test\.go:' || true); \
	if [ -n "$$bad" ]; then \
		echo "clock gate: wall-clock reads outside internal/clock:"; \
		echo "$$bad"; exit 1; \
	fi
	@echo "clock gate: clean"

# Packages whose code is reachable from a registered experiment body: the
# determinism obligations of DESIGN.md §6 apply to all of them.
EXP_PKGS = internal/exp internal/experiments internal/scenarios internal/report \
	internal/orchestrator internal/ppc internal/pmu internal/bigdata \
	internal/fog internal/edgeml internal/serve internal/runpack internal/jcs \
	internal/corpus internal/scengen examples cmd

# Enforce the experiment randomness contract: experiment-registered packages
# (and the examples/CLIs that drive them) must derive every random stream
# from internal/rng seed-splitting — importing math/rand or calling time.Now
# there breaks Spec-fingerprint memoization and worker-count invariance.
# Tests keep their freedom; _test.go files are exempt.
randgate:
	@bad=$$(grep -rn --include='*.go' -E '"math/rand(/v2)?"|time\.Now\(' $(EXP_PKGS) \
		| grep -v '_test\.go:' || true); \
	if [ -n "$$bad" ]; then \
		echo "rand gate: math/rand or time.Now in experiment-registered packages:"; \
		echo "$$bad"; exit 1; \
	fi
	@echo "rand gate: clean"

# Run every registered experiment under clock.Sim through the registry —
# the uniform "all Table 2 checkmarks are executable" check, plus the
# report build, orchestrator sweeps and continuum what-ifs.
experiments:
	$(GO) run ./cmd/smsreport -run all

# The reproducibility gate: verify the committed golden runpacks, re-execute
# each one's Spec from its sealed manifest at three worker counts, and fail
# on any material drift (artifact bytes, metrics, fingerprint, seeds).
regress:
	$(GO) run ./cmd/runpack regress -workers 1,4,8 goldens/runpacks

bench:
	$(GO) test -bench=. -benchmem ./...

# Convert `go test -bench -benchmem` output into the benchmark record
# format cmd/benchdiff consumes: [{name, ns_per_op, allocs_per_op}, …].
BENCH_TO_JSON = awk 'BEGIN { print "[" } \
	  /^Benchmark/ { \
	    name=$$1; ns=""; allocs=""; \
	    for (i = 2; i < NF; i++) { \
	      if ($$(i+1) == "ns/op") ns = $$i; \
	      if ($$(i+1) == "allocs/op") allocs = $$i; \
	    } \
	    if (ns == "") next; \
	    if (allocs == "") allocs = 0; \
	    if (n++) printf ",\n"; \
	    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs; \
	  } \
	  END { print "\n]" }'

# The Monte-Carlo / clustering kernel benchmarks gated by bench-gate.
KERNEL_BENCH_RE = (KMeans(Seq|Par)|FindHotspots|BootstrapQ3(Seq|Par))$$
KERNEL_BENCH_PKGS = ./internal/bigdata ./internal/core

# Run the sequential-vs-parallel benchmark pairs (…Seq / …Par) and record
# them as BENCH_par.json: [{name, ns_per_op, allocs_per_op}, …].
bench-compare:
	$(GO) test -run '^$$' -bench '(Seq|Par)$$' -benchmem ./... | tee bench_par.txt
	$(BENCH_TO_JSON) bench_par.txt > BENCH_par.json
	@echo wrote BENCH_par.json

# Refresh the committed kernel-benchmark baseline (BENCH_kernels.json).
bench-kernels:
	$(GO) test -run '^$$' -bench '$(KERNEL_BENCH_RE)' -benchmem -count 5 $(KERNEL_BENCH_PKGS) | tee bench_kernels.txt
	$(BENCH_TO_JSON) bench_kernels.txt > BENCH_kernels.json
	@echo wrote BENCH_kernels.json

# The smsd serving-path benchmarks gated by bench-gate: warm status polls,
# content-addressed artifact fetches, and the full steady-state mix under
# the deterministic admission model.
SERVE_BENCH_RE = Serve(StatusPoll|ArtifactFetch|Mixed)$$
SERVE_BENCH_PKGS = ./internal/serve/loadgen

# Convert serve benchmark output into BENCH_serve.json: the benchdiff
# record fields (name, ns_per_op, allocs_per_op) plus the informational
# throughput and modeled latency quantiles BenchmarkServeMixed reports.
SERVE_TO_JSON = awk 'BEGIN { print "[" } \
	  /^Benchmark/ { \
	    name=$$1; ns=""; allocs=""; rps=""; p50=""; p95=""; p99=""; \
	    for (i = 2; i < NF; i++) { \
	      if ($$(i+1) == "ns/op") ns = $$i; \
	      if ($$(i+1) == "allocs/op") allocs = $$i; \
	      if ($$(i+1) == "req/s") rps = $$i; \
	      if ($$(i+1) == "p50_us") p50 = $$i; \
	      if ($$(i+1) == "p95_us") p95 = $$i; \
	      if ($$(i+1) == "p99_us") p99 = $$i; \
	    } \
	    if (ns == "") next; \
	    if (allocs == "") allocs = 0; \
	    if (n++) printf ",\n"; \
	    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s", name, ns, allocs; \
	    if (rps != "") printf ", \"req_per_s\": %s", rps; \
	    if (p50 != "") printf ", \"p50_us\": %s, \"p95_us\": %s, \"p99_us\": %s", p50, p95, p99; \
	    printf "}"; \
	  } \
	  END { print "\n]" }'

# Refresh the committed serving-benchmark baseline (BENCH_serve.json).
bench-serve:
	$(GO) test -run '^$$' -bench '$(SERVE_BENCH_RE)' -benchmem -count 5 $(SERVE_BENCH_PKGS) | tee bench_serve.txt
	$(SERVE_TO_JSON) bench_serve.txt > BENCH_serve.json
	@echo wrote BENCH_serve.json

# Re-measure the kernel, serving and cas benchmarks and diff against the
# committed baselines and fail the build on regressions. allocs/op is
# gated tight (10%): allocation counts are exact and deterministic, and
# an extra allocation per op is the regression that matters on these
# paths. ns/op against the *committed* kernel/serve baselines gets 25%
# headroom — wall-clock throughput on shared hardware drifts by more
# than 10% between sessions, and a tighter gate only measures the
# machine. The cas leg stays at 10% ns/op because bench-cache re-records
# its baseline in the same `make all` run, so head and baseline see the
# same machine conditions. Refresh a baseline with `make bench-kernels`
# / `make bench-serve` / `make bench-cache` after an intentional change
# to that path.
bench-gate:
	$(GO) test -run '^$$' -bench '$(KERNEL_BENCH_RE)' -benchmem -count 5 $(KERNEL_BENCH_PKGS) | tee bench_gate.txt
	$(BENCH_TO_JSON) bench_gate.txt > bench_gate_head.json
	$(GO) run ./cmd/benchdiff -threshold 0.25 -alloc-threshold 0.10 BENCH_kernels.json bench_gate_head.json
	$(GO) test -run '^$$' -bench '$(SERVE_BENCH_RE)' -benchmem -count 5 $(SERVE_BENCH_PKGS) | tee bench_gate.txt
	$(BENCH_TO_JSON) bench_gate.txt > bench_gate_head.json
	$(GO) run ./cmd/benchdiff -threshold 0.25 -alloc-threshold 0.10 BENCH_serve.json bench_gate_head.json
	$(GO) test -run '^$$' -bench 'ReportBuild(Cold|Warm)$$' -count 3 ./internal/report | tee bench_gate.txt
	$(CAS_TO_JSON) bench_gate.txt > bench_gate_head.json
	$(GO) run ./cmd/benchdiff -threshold 0.10 BENCH_cas.json bench_gate_head.json
	$(GO) test -run '^$$' -bench '$(RUNPACK_BENCH_RE)' -benchmem -count 5 $(RUNPACK_BENCH_PKGS) | tee bench_gate.txt
	$(BENCH_TO_JSON) bench_gate.txt > bench_gate_head.json
	$(GO) run ./cmd/benchdiff -threshold 0.25 -alloc-threshold 0.10 BENCH_runpack.json bench_gate_head.json
	$(GO) test -run '^$$' -bench '$(CORPUS_BENCH_RE)' -benchmem -count 5 $(CORPUS_BENCH_PKGS) | tee bench_gate.txt
	$(BENCH_TO_JSON) bench_gate.txt > bench_gate_head.json
	$(GO) run ./cmd/benchdiff -threshold 0.25 -alloc-threshold 0.10 BENCH_corpus.json bench_gate_head.json
	$(GO) test -run '^$$' -bench '$(SCEN_BENCH_RE)' -benchmem -count 5 $(SCEN_BENCH_PKGS) | tee bench_gate.txt
	$(BENCH_TO_JSON) bench_gate.txt > bench_gate_head.json
	$(GO) run ./cmd/benchdiff -threshold 0.25 -alloc-threshold 0.10 BENCH_scen.json bench_gate_head.json
	@rm -f bench_gate.txt bench_gate_head.json

# The discrete-event engine and million-event sweep benchmarks: the engine
# hot loop (Push/Pop must stay allocation-free), the 1M-event Reset/reuse
# cycle, cancel-heavy compaction, and the 512-candidate × 420-step fault
# sweep that exercises the compiled-schedule + pooled-scratch path end to
# end. Recorded as BENCH_events.json in the benchdiff record format.
EVENT_BENCH_RE = (EngineMillionEvents|EnginePushPop|EngineCancelHeavy|FaultSweepLarge(Seq)?)$$
EVENT_BENCH_PKGS = ./internal/continuum ./internal/orchestrator

bench-events:
	$(GO) test -run '^$$' -bench '$(EVENT_BENCH_RE)' -benchmem $(EVENT_BENCH_PKGS) | tee bench_events.txt
	$(BENCH_TO_JSON) bench_events.txt > BENCH_events.json
	@echo wrote BENCH_events.json

# The runpack seal/verify hot paths gated by bench-gate: canonical-JSON
# manifest encoding + blob digesting (Pack), full HMAC verification, and
# full ed25519 verification.
RUNPACK_BENCH_RE = Runpack(Pack|Verify|VerifyEd25519)$$
RUNPACK_BENCH_PKGS = ./internal/runpack

# Refresh the committed runpack-benchmark baseline (BENCH_runpack.json).
bench-runpack:
	$(GO) test -run '^$$' -bench '$(RUNPACK_BENCH_RE)' -benchmem -count 5 $(RUNPACK_BENCH_PKGS) | tee bench_runpack.txt
	$(BENCH_TO_JSON) bench_runpack.txt > BENCH_runpack.json
	@echo wrote BENCH_runpack.json

# The corpus-at-scale hot paths gated by bench-gate: the compiled keyword
# automaton (must stay allocation-free) against its strings.Contains
# baseline, raw corpus generation, one shard body, and the cold and warm
# sharded pipelines. Allocation counts on all of these are deterministic,
# so the 10% alloc gate effectively pins them exactly.
CORPUS_BENCH_RE = (ClassifyKernel(Baseline)?|ClassifyDescription|CorpusGen|CorpusShard|CorpusClassify(Sharded|Warm))$$
CORPUS_BENCH_PKGS = ./internal/core ./internal/corpus

# Refresh the committed corpus-benchmark baseline (BENCH_corpus.json).
bench-corpus:
	$(GO) test -run '^$$' -bench '$(CORPUS_BENCH_RE)' -benchmem -count 5 $(CORPUS_BENCH_PKGS) | tee bench_corpus.txt
	$(BENCH_TO_JSON) bench_corpus.txt > BENCH_corpus.json
	@echo wrote BENCH_corpus.json

# The generated-scenario hot paths gated by bench-gate: pure (seed, i) →
# composition generation, the cold sharded family sweep, and the warm sweep
# (every shard a cas hit, zero configuration bodies).
SCEN_BENCH_RE = Scen(GenConfigs|FamilyCold|FamilyWarm)$$
SCEN_BENCH_PKGS = ./internal/scengen

# Refresh the committed generated-scenario baseline (BENCH_scen.json).
bench-scen:
	$(GO) test -run '^$$' -bench '$(SCEN_BENCH_RE)' -benchmem -count 5 $(SCEN_BENCH_PKGS) | tee bench_scen.txt
	$(BENCH_TO_JSON) bench_scen.txt > BENCH_scen.json
	@echo wrote BENCH_scen.json

# Convert the report-build benchmark output into the cas benchmark record:
# ns/op plus the cached-step count, deliberately *without* allocs/op (the
# report benchmarks self-report allocations; the cas gate tracks wall time
# and step counts, and recording allocs on only one side of the diff would
# make benchdiff compare a real count against an absent-therefore-zero one).
CAS_TO_JSON = awk 'BEGIN { print "[" } \
	  /^BenchmarkReportBuild(Cold|Warm)(-[0-9]+)?[ \t]/ { \
	    name=$$1; ns=""; steps=""; \
	    for (i = 2; i < NF; i++) { \
	      if ($$(i+1) == "ns/op") ns = $$i; \
	      if ($$(i+1) == "steps/op") steps = $$i; \
	    } \
	    if (ns == "") next; \
	    if (n++) printf ",\n"; \
	    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"steps_per_op\": %s}", name, ns, steps; \
	  } \
	  END { print "\n]" }'

# Benchmark the content-addressed report build, cold (fresh store: every
# section renders) vs warm (primed store: zero step bodies execute), and
# record BENCH_cas.json: [{name, ns_per_op, steps_per_op}, …].
bench-cache:
	$(GO) test -run '^$$' -bench 'ReportBuild(Cold|Warm)$$' -count 3 ./internal/report | tee bench_cas.txt
	$(CAS_TO_JSON) bench_cas.txt > BENCH_cas.json
	@echo wrote BENCH_cas.json

# Regenerate every paper artifact (tables 1-2, figures 1-4, full report)
# in every supported format under artifacts/.
artifacts:
	$(GO) run ./cmd/smsreport -out artifacts/
	$(GO) run ./cmd/smsreport -table 2 -format svg > artifacts/table2.svg

# Run every example end to end.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/compression
	$(GO) run ./examples/serverledge
	$(GO) run ./examples/galaxyio
	$(GO) run ./examples/divexplorer
	$(GO) run ./examples/worlddynamics

# The final experiment record (see the reproduction protocol).
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	rm -rf artifacts/ test_output.txt bench_output.txt bench_par.txt BENCH_par.json \
		bench_kernels.txt BENCH_kernels.json bench_cas.txt BENCH_cas.json \
		bench_gate.txt bench_gate_head.json bench_events.txt BENCH_events.json \
		bench_serve.txt BENCH_serve.json bench_runpack.txt BENCH_runpack.json \
		bench_corpus.txt BENCH_corpus.json bench_scen.txt BENCH_scen.json
