# Reproduction of "A Systematic Mapping Study of Italian Research on
# Workflows" (SC-W 2023). Standard-library Go only; everything runs offline.

GO ?= go

.PHONY: all build vet test race bench artifacts examples outputs clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper artifact (tables 1-2, figures 1-4, full report)
# in every supported format under artifacts/.
artifacts:
	$(GO) run ./cmd/smsreport -out artifacts/
	$(GO) run ./cmd/smsreport -table 2 -format svg > artifacts/table2.svg

# Run every example end to end.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/compression
	$(GO) run ./examples/serverledge
	$(GO) run ./examples/galaxyio
	$(GO) run ./examples/divexplorer
	$(GO) run ./examples/worlddynamics

# The final experiment record (see the reproduction protocol).
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	rm -rf artifacts/ test_output.txt bench_output.txt
